//! Coupling maps and SWAP-insertion routing.
//!
//! Real devices only support two-qubit gates between *coupled* physical
//! qubits; running a circuit on them requires inserting SWAP gates. The
//! paper's Table 3 highlights this cost: 9 of the 16 CNOTs of the 7-qubit
//! whole-circuit run on IBM Lagos came from SWAP insertion, which is a large
//! part of why the uncut execution loses fidelity while QRCC's small
//! subcircuits (routed trivially) do not.
//!
//! The router here is a deliberately simple greedy pass: it keeps a
//! logical→physical mapping and, for every two-qubit gate acting on
//! non-adjacent qubits, swaps along a shortest path until the pair is
//! adjacent. That is enough to reproduce the SWAP-overhead effect in the
//! noisy-device experiments.

use crate::{Circuit, CircuitError, Operation, QubitId};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// An undirected coupling map over `n` physical qubits.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CouplingMap {
    num_qubits: usize,
    adjacency: Vec<Vec<usize>>,
}

impl CouplingMap {
    /// Builds a coupling map from an edge list.
    ///
    /// # Panics
    ///
    /// Panics if an edge endpoint is out of range or a self-loop.
    pub fn new(num_qubits: usize, edges: impl IntoIterator<Item = (usize, usize)>) -> Self {
        let mut adjacency = vec![Vec::new(); num_qubits];
        for (a, b) in edges {
            assert!(a < num_qubits && b < num_qubits && a != b, "invalid coupling edge ({a},{b})");
            if !adjacency[a].contains(&b) {
                adjacency[a].push(b);
                adjacency[b].push(a);
            }
        }
        for list in &mut adjacency {
            list.sort_unstable();
        }
        CouplingMap { num_qubits, adjacency }
    }

    /// A linear (1-D chain) topology.
    pub fn linear(num_qubits: usize) -> Self {
        Self::new(num_qubits, (0..num_qubits.saturating_sub(1)).map(|i| (i, i + 1)))
    }

    /// A `rows × cols` grid topology.
    pub fn grid(rows: usize, cols: usize) -> Self {
        let idx = |r: usize, c: usize| r * cols + c;
        let mut edges = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                if c + 1 < cols {
                    edges.push((idx(r, c), idx(r, c + 1)));
                }
                if r + 1 < rows {
                    edges.push((idx(r, c), idx(r + 1, c)));
                }
            }
        }
        Self::new(rows * cols, edges)
    }

    /// An all-to-all topology (no routing needed).
    pub fn full(num_qubits: usize) -> Self {
        let mut edges = Vec::new();
        for a in 0..num_qubits {
            for b in (a + 1)..num_qubits {
                edges.push((a, b));
            }
        }
        Self::new(num_qubits, edges)
    }

    /// The 7-qubit IBM-Lagos/Falcon "H" topology used in the paper's real
    /// machine evaluation (≈1.7 connections per qubit):
    ///
    /// ```text
    /// 0 - 1 - 2
    ///     |
    ///     3
    ///     |
    /// 4 - 5 - 6
    /// ```
    pub fn ibm_lagos() -> Self {
        Self::new(7, [(0, 1), (1, 2), (1, 3), (3, 5), (4, 5), (5, 6)])
    }

    /// Number of physical qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Whether physical qubits `a` and `b` are directly coupled.
    pub fn are_coupled(&self, a: usize, b: usize) -> bool {
        self.adjacency[a].contains(&b)
    }

    /// The neighbours of physical qubit `q`.
    pub fn neighbours(&self, q: usize) -> &[usize] {
        &self.adjacency[q]
    }

    /// Average number of connections per qubit.
    pub fn average_degree(&self) -> f64 {
        if self.num_qubits == 0 {
            return 0.0;
        }
        self.adjacency.iter().map(Vec::len).sum::<usize>() as f64 / self.num_qubits as f64
    }

    /// Shortest path (inclusive of both endpoints) between two physical
    /// qubits, or `None` if they are disconnected.
    pub fn shortest_path(&self, from: usize, to: usize) -> Option<Vec<usize>> {
        if from == to {
            return Some(vec![from]);
        }
        let mut previous = vec![usize::MAX; self.num_qubits];
        let mut queue = VecDeque::from([from]);
        previous[from] = from;
        while let Some(current) = queue.pop_front() {
            for &next in &self.adjacency[current] {
                if previous[next] == usize::MAX {
                    previous[next] = current;
                    if next == to {
                        let mut path = vec![to];
                        let mut node = to;
                        while node != from {
                            node = previous[node];
                            path.push(node);
                        }
                        path.reverse();
                        return Some(path);
                    }
                    queue.push_back(next);
                }
            }
        }
        None
    }

    /// Whether the map is connected.
    pub fn is_connected(&self) -> bool {
        if self.num_qubits == 0 {
            return true;
        }
        (1..self.num_qubits).all(|q| self.shortest_path(0, q).is_some())
    }
}

/// The result of routing a circuit onto a coupling map.
#[derive(Debug, Clone)]
pub struct RoutedCircuit {
    /// The routed circuit (over physical qubits).
    pub circuit: Circuit,
    /// Number of SWAP gates inserted.
    pub swaps_inserted: usize,
    /// Final logical→physical mapping (`mapping[logical] = physical`).
    pub final_mapping: Vec<usize>,
}

/// Greedy SWAP-insertion router.
#[derive(Debug, Clone, Default)]
pub struct Router {}

impl Router {
    /// Creates the router.
    pub fn new() -> Self {
        Router {}
    }

    /// Routes `circuit` onto `coupling`, starting from the identity
    /// logical→physical mapping.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::QubitOutOfRange`] if the circuit needs more
    /// qubits than the coupling map provides, or if the map is disconnected
    /// so that some pair can never be brought together.
    pub fn route(
        &self,
        circuit: &Circuit,
        coupling: &CouplingMap,
    ) -> Result<RoutedCircuit, CircuitError> {
        if circuit.num_qubits() > coupling.num_qubits() {
            return Err(CircuitError::QubitOutOfRange {
                qubit: circuit.num_qubits() - 1,
                num_qubits: coupling.num_qubits(),
            });
        }
        // mapping[logical] = physical and its inverse
        let mut mapping: Vec<usize> = (0..coupling.num_qubits()).collect();
        let mut inverse: Vec<usize> = (0..coupling.num_qubits()).collect();
        let mut routed = Circuit::with_clbits(coupling.num_qubits(), circuit.num_clbits());
        routed.set_name(format!("{}_routed", circuit.name()));
        let mut swaps = 0usize;

        let apply_swap = |routed: &mut Circuit,
                          mapping: &mut Vec<usize>,
                          inverse: &mut Vec<usize>,
                          a: usize,
                          b: usize| {
            routed.swap(a, b);
            let la = inverse[a];
            let lb = inverse[b];
            mapping.swap(la, lb);
            inverse.swap(a, b);
        };

        for op in circuit.operations() {
            match op {
                Operation::Two { gate, qubits } => {
                    let pa = mapping[qubits[0].index()];
                    let pb = mapping[qubits[1].index()];
                    if !coupling.are_coupled(pa, pb) {
                        let path = coupling.shortest_path(pa, pb).ok_or(
                            CircuitError::QubitOutOfRange {
                                qubit: qubits[1].index(),
                                num_qubits: coupling.num_qubits(),
                            },
                        )?;
                        // swap the first operand down the path until adjacent
                        for window in path.windows(2).take(path.len().saturating_sub(2)) {
                            apply_swap(
                                &mut routed,
                                &mut mapping,
                                &mut inverse,
                                window[0],
                                window[1],
                            );
                            swaps += 1;
                        }
                    }
                    let pb = mapping[qubits[1].index()];
                    let pa = mapping[qubits[0].index()];
                    debug_assert!(coupling.are_coupled(pa, pb));
                    routed.push(Operation::Two {
                        gate: *gate,
                        qubits: [QubitId::new(pa), QubitId::new(pb)],
                    });
                }
                other => {
                    let mapped = other.map_qubits(|q| QubitId::new(mapping[q.index()]));
                    routed.push(mapped);
                }
            }
        }
        Ok(RoutedCircuit { circuit: routed, swaps_inserted: swaps, final_mapping: mapping })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn coupling_map_constructors() {
        let linear = CouplingMap::linear(4);
        assert!(linear.are_coupled(1, 2));
        assert!(!linear.are_coupled(0, 3));
        assert!(linear.is_connected());
        let grid = CouplingMap::grid(2, 3);
        assert_eq!(grid.num_qubits(), 6);
        assert!(grid.are_coupled(0, 3));
        let lagos = CouplingMap::ibm_lagos();
        assert_eq!(lagos.num_qubits(), 7);
        assert!((lagos.average_degree() - 12.0 / 7.0).abs() < 1e-12);
        assert!(lagos.is_connected());
        let full = CouplingMap::full(4);
        assert!(full.are_coupled(0, 3));
    }

    #[test]
    fn shortest_paths_on_the_lagos_topology() {
        let lagos = CouplingMap::ibm_lagos();
        let path = lagos.shortest_path(0, 6).unwrap();
        assert_eq!(path, vec![0, 1, 3, 5, 6]);
        assert_eq!(lagos.shortest_path(2, 2).unwrap(), vec![2]);
        let disconnected = CouplingMap::new(3, [(0, 1)]);
        assert!(disconnected.shortest_path(0, 2).is_none());
        assert!(!disconnected.is_connected());
    }

    #[test]
    fn routing_adjacent_gates_inserts_no_swaps() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2);
        let routed = Router::new().route(&c, &CouplingMap::linear(3)).unwrap();
        assert_eq!(routed.swaps_inserted, 0);
        assert_eq!(routed.circuit.two_qubit_gate_count(), 2);
    }

    #[test]
    fn routing_distant_gates_inserts_swaps_and_respects_coupling() {
        let mut c = Circuit::new(4);
        c.h(0).cx(0, 3).cx(1, 2).cx(0, 3);
        let coupling = CouplingMap::linear(4);
        let routed = Router::new().route(&c, &coupling).unwrap();
        assert!(routed.swaps_inserted >= 2);
        for op in routed.circuit.operations().iter().filter(|o| o.is_two_qubit_gate()) {
            let qs = op.qubits();
            assert!(
                coupling.are_coupled(qs[0].index(), qs[1].index()),
                "gate on uncoupled pair {:?}",
                qs
            );
        }
    }

    #[test]
    fn routing_preserves_the_logical_gate_list() {
        // Routing only adds SWAPs and relabels qubits; the number of logical
        // gates of each kind must be unchanged (the unitary-equivalence check
        // against a state-vector simulator lives in the cross-crate
        // integration tests to avoid a dependency cycle here).
        let mut c = Circuit::new(5);
        c.h(0).cx(0, 4).cx(1, 3).cz(0, 2).rz(0.4, 3);
        let routed = Router::new().route(&c, &CouplingMap::linear(5)).unwrap();
        assert_eq!(
            routed.circuit.two_qubit_gate_count() - routed.swaps_inserted,
            c.two_qubit_gate_count()
        );
        assert_eq!(routed.circuit.single_qubit_gate_count(), c.single_qubit_gate_count());
        assert_eq!(routed.final_mapping.len(), 5);
    }

    #[test]
    fn qft_on_lagos_needs_many_swaps() {
        // The paper observes that most CNOTs of the uncut 7-qubit run come
        // from SWAP insertion on the sparse Lagos topology.
        let qft = generators::qft_no_swap(7);
        let routed = Router::new().route(&qft, &CouplingMap::ibm_lagos()).unwrap();
        assert!(
            routed.swaps_inserted >= qft.two_qubit_gate_count() / 3,
            "expected a large SWAP overhead, got {} swaps for {} gates",
            routed.swaps_inserted,
            qft.two_qubit_gate_count()
        );
        // routing onto an all-to-all map is free
        let free = Router::new().route(&qft, &CouplingMap::full(7)).unwrap();
        assert_eq!(free.swaps_inserted, 0);
    }

    #[test]
    fn routing_rejects_too_small_maps() {
        let c = Circuit::new(5);
        assert!(Router::new().route(&c, &CouplingMap::linear(3)).is_err());
    }
}
