use crate::{CircuitError, Gate};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a qubit within a [`Circuit`](crate::Circuit).
///
/// A thin newtype over `usize` so that qubit indices cannot silently be mixed
/// up with classical-bit or layer indices.
///
/// ```rust
/// use qrcc_circuit::QubitId;
///
/// let q = QubitId::new(3);
/// assert_eq!(q.index(), 3);
/// assert_eq!(QubitId::from(3usize), q);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct QubitId(usize);

impl QubitId {
    /// Creates a qubit id from a raw index.
    pub fn new(index: usize) -> Self {
        QubitId(index)
    }

    /// The raw index of this qubit.
    pub fn index(&self) -> usize {
        self.0
    }
}

impl From<usize> for QubitId {
    fn from(index: usize) -> Self {
        QubitId(index)
    }
}

impl From<QubitId> for usize {
    fn from(q: QubitId) -> usize {
        q.0
    }
}

impl fmt::Display for QubitId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// A single operation in a [`Circuit`](crate::Circuit).
///
/// Operations are either unitary gates (single- or two-qubit), mid-circuit
/// measurements into a classical bit, qubit resets (to |0⟩), or barriers.
/// Measurement and reset are exactly the operations needed for qubit reuse
/// (IBM's mid-circuit Measure-and-Reset functionality) and for the
/// measurement/initialization points introduced by wire cutting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Operation {
    /// A single-qubit gate applied to `qubit`.
    Single {
        /// The gate.
        gate: Gate,
        /// The target qubit.
        qubit: QubitId,
    },
    /// A two-qubit gate applied to `(qubits[0], qubits[1])`.
    ///
    /// For controlled gates the first entry is the control and the second the
    /// target.
    Two {
        /// The gate.
        gate: Gate,
        /// The two target qubits, `[control, target]` for controlled gates.
        qubits: [QubitId; 2],
    },
    /// Projective measurement of `qubit` in the computational basis, storing
    /// the outcome in classical bit `clbit`. The qubit collapses and remains
    /// in the circuit.
    Measure {
        /// The measured qubit.
        qubit: QubitId,
        /// The classical bit receiving the outcome.
        clbit: usize,
    },
    /// Reset `qubit` to |0⟩ (used together with [`Operation::Measure`] for
    /// qubit reuse).
    Reset {
        /// The qubit being reset.
        qubit: QubitId,
    },
    /// A barrier across the listed qubits (no effect on semantics; prevents
    /// commuting operations across it during layering).
    Barrier {
        /// The qubits spanned by the barrier.
        qubits: Vec<QubitId>,
    },
}

impl Operation {
    /// Builds a gate operation, validating arity and duplicate qubits.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::ArityMismatch`] when the number of qubits does
    /// not match the gate, [`CircuitError::DuplicateQubit`] when a two-qubit
    /// gate is applied to the same qubit twice, and
    /// [`CircuitError::NonFiniteParameter`] for NaN/infinite angles.
    pub fn gate(gate: Gate, qubits: &[QubitId]) -> Result<Self, CircuitError> {
        if !gate.params_finite() {
            return Err(CircuitError::NonFiniteParameter { gate: gate.name() });
        }
        match (gate.num_qubits(), qubits) {
            (1, [q]) => Ok(Operation::Single { gate, qubit: *q }),
            (2, [a, b]) => {
                if a == b {
                    Err(CircuitError::DuplicateQubit { qubit: a.index() })
                } else {
                    Ok(Operation::Two { gate, qubits: [*a, *b] })
                }
            }
            (expected, supplied) => Err(CircuitError::ArityMismatch {
                gate: gate.name(),
                expected,
                actual: supplied.len(),
            }),
        }
    }

    /// The qubits this operation touches, in application order.
    pub fn qubits(&self) -> Vec<QubitId> {
        match self {
            Operation::Single { qubit, .. } => vec![*qubit],
            Operation::Two { qubits, .. } => qubits.to_vec(),
            Operation::Measure { qubit, .. } => vec![*qubit],
            Operation::Reset { qubit } => vec![*qubit],
            Operation::Barrier { qubits } => qubits.clone(),
        }
    }

    /// The unitary gate of this operation, if it is a gate.
    pub fn as_gate(&self) -> Option<&Gate> {
        match self {
            Operation::Single { gate, .. } | Operation::Two { gate, .. } => Some(gate),
            _ => None,
        }
    }

    /// Whether this operation is a unitary gate (single- or two-qubit).
    pub fn is_gate(&self) -> bool {
        self.as_gate().is_some()
    }

    /// Whether this operation is a two-qubit gate.
    pub fn is_two_qubit_gate(&self) -> bool {
        matches!(self, Operation::Two { .. })
    }

    /// Whether this operation is a measurement.
    pub fn is_measure(&self) -> bool {
        matches!(self, Operation::Measure { .. })
    }

    /// Whether this operation is a reset.
    pub fn is_reset(&self) -> bool {
        matches!(self, Operation::Reset { .. })
    }

    /// Whether this operation is a barrier.
    pub fn is_barrier(&self) -> bool {
        matches!(self, Operation::Barrier { .. })
    }

    /// Returns a copy of this operation with every qubit index remapped via
    /// `f`, e.g. when embedding a subcircuit into a larger register.
    pub fn map_qubits(&self, mut f: impl FnMut(QubitId) -> QubitId) -> Operation {
        match self {
            Operation::Single { gate, qubit } => {
                Operation::Single { gate: *gate, qubit: f(*qubit) }
            }
            Operation::Two { gate, qubits } => {
                Operation::Two { gate: *gate, qubits: [f(qubits[0]), f(qubits[1])] }
            }
            Operation::Measure { qubit, clbit } => {
                Operation::Measure { qubit: f(*qubit), clbit: *clbit }
            }
            Operation::Reset { qubit } => Operation::Reset { qubit: f(*qubit) },
            Operation::Barrier { qubits } => {
                Operation::Barrier { qubits: qubits.iter().map(|q| f(*q)).collect() }
            }
        }
    }
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operation::Single { gate, qubit } => write!(f, "{gate} {qubit}"),
            Operation::Two { gate, qubits } => write!(f, "{gate} {},{}", qubits[0], qubits[1]),
            Operation::Measure { qubit, clbit } => write!(f, "measure {qubit} -> c{clbit}"),
            Operation::Reset { qubit } => write!(f, "reset {qubit}"),
            Operation::Barrier { qubits } => {
                let names: Vec<String> = qubits.iter().map(|q| q.to_string()).collect();
                write!(f, "barrier {}", names.join(","))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(i: usize) -> QubitId {
        QubitId::new(i)
    }

    #[test]
    fn gate_constructor_validates_arity() {
        assert!(Operation::gate(Gate::H, &[q(0)]).is_ok());
        assert!(Operation::gate(Gate::Cx, &[q(0), q(1)]).is_ok());
        assert!(matches!(
            Operation::gate(Gate::Cx, &[q(0)]),
            Err(CircuitError::ArityMismatch { .. })
        ));
        assert!(matches!(
            Operation::gate(Gate::H, &[q(0), q(1)]),
            Err(CircuitError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn gate_constructor_rejects_duplicate_qubits() {
        assert!(matches!(
            Operation::gate(Gate::Cz, &[q(2), q(2)]),
            Err(CircuitError::DuplicateQubit { qubit: 2 })
        ));
    }

    #[test]
    fn gate_constructor_rejects_nan_params() {
        assert!(matches!(
            Operation::gate(Gate::Rz(f64::NAN), &[q(0)]),
            Err(CircuitError::NonFiniteParameter { .. })
        ));
    }

    #[test]
    fn qubits_are_reported_in_order() {
        let op = Operation::gate(Gate::Cx, &[q(3), q(1)]).unwrap();
        assert_eq!(op.qubits(), vec![q(3), q(1)]);
    }

    #[test]
    fn map_qubits_remaps_all_variants() {
        let shift = |qq: QubitId| QubitId::new(qq.index() + 10);
        let ops = [
            Operation::gate(Gate::H, &[q(0)]).unwrap(),
            Operation::gate(Gate::Cx, &[q(0), q(1)]).unwrap(),
            Operation::Measure { qubit: q(2), clbit: 0 },
            Operation::Reset { qubit: q(3) },
            Operation::Barrier { qubits: vec![q(0), q(1)] },
        ];
        for op in ops {
            let mapped = op.map_qubits(shift);
            for (orig, new) in op.qubits().iter().zip(mapped.qubits()) {
                assert_eq!(new.index(), orig.index() + 10);
            }
        }
    }

    #[test]
    fn classification_predicates() {
        let m = Operation::Measure { qubit: q(0), clbit: 0 };
        assert!(m.is_measure() && !m.is_gate() && !m.is_reset());
        let r = Operation::Reset { qubit: q(0) };
        assert!(r.is_reset() && !r.is_gate());
        let g = Operation::gate(Gate::Cz, &[q(0), q(1)]).unwrap();
        assert!(g.is_gate() && g.is_two_qubit_gate());
    }

    #[test]
    fn qubit_id_conversions_roundtrip() {
        let id = QubitId::from(7usize);
        assert_eq!(usize::from(id), 7);
        assert_eq!(id.to_string(), "q7");
    }
}
