//! Benchmark circuit generators used throughout the paper's evaluation.
//!
//! Two families are provided, mirroring §5.1 of the paper:
//!
//! * **Probability-distribution benchmarks** (only wire-cuttable):
//!   [`qft`], [`aqft`], [`supremacy`], [`ripple_carry_adder`].
//! * **Expectation-value benchmarks** (wire- and gate-cuttable):
//!   [`qaoa`] on regular / Erdős–Rényi / Barabási–Albert graphs,
//!   [`hamiltonian_simulation`] on 2-D lattices (Ising / XY / Heisenberg,
//!   nearest or next-nearest neighbour), and [`vqe_two_local`] (hydrogen-chain
//!   style linear two-local ansatz).
//!
//! All generators are deterministic given their seed.

mod adder;
mod hamsim;
mod qaoa;
mod qft;
mod supremacy;
mod vqe;

pub use adder::ripple_carry_adder;
pub use hamsim::{hamiltonian_simulation, HamiltonianKind};
pub use qaoa::{qaoa, qaoa_barabasi_albert, qaoa_erdos_renyi, qaoa_regular};
pub use qft::{aqft, qft, qft_no_swap};
pub use supremacy::supremacy;
pub use vqe::vqe_two_local;

/// Identifies one of the paper's benchmark families by its three-letter
/// abbreviation, for use in the experiment harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// Quantum Fourier Transform.
    Qft,
    /// Approximate Quantum Fourier Transform.
    Aqft,
    /// Google-style random supremacy circuit.
    Spm,
    /// Cuccaro ripple-carry adder.
    Add,
    /// QAOA on a random m-regular graph.
    Reg,
    /// QAOA on an Erdős–Rényi graph.
    Erd,
    /// QAOA on a Barabási–Albert graph.
    Bar,
    /// 2-D transverse-field Ising simulation (nearest neighbour).
    Is,
    /// 2-D XY model simulation (nearest neighbour).
    Xy,
    /// 2-D Heisenberg simulation (nearest neighbour).
    Hs,
    /// Ising with next-nearest neighbours.
    IsN,
    /// XY with next-nearest neighbours.
    XyN,
    /// Heisenberg with next-nearest neighbours.
    HsN,
    /// Hydrogen-chain VQE two-local ansatz.
    Vqe,
}

impl Benchmark {
    /// The three-letter abbreviation used in the paper's tables.
    pub fn abbreviation(&self) -> &'static str {
        match self {
            Benchmark::Qft => "QFT",
            Benchmark::Aqft => "AQFT",
            Benchmark::Spm => "SPM",
            Benchmark::Add => "ADD",
            Benchmark::Reg => "REG",
            Benchmark::Erd => "ERD",
            Benchmark::Bar => "BAR",
            Benchmark::Is => "IS",
            Benchmark::Xy => "XY",
            Benchmark::Hs => "HS",
            Benchmark::IsN => "IS-n",
            Benchmark::XyN => "XY-n",
            Benchmark::HsN => "HS-n",
            Benchmark::Vqe => "VQE",
        }
    }

    /// Whether the benchmark computes an expectation value (and is therefore
    /// eligible for gate cutting) rather than a probability distribution.
    pub fn computes_expectation(&self) -> bool {
        !matches!(self, Benchmark::Qft | Benchmark::Aqft | Benchmark::Spm | Benchmark::Add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abbreviations_are_unique() {
        let all = [
            Benchmark::Qft,
            Benchmark::Aqft,
            Benchmark::Spm,
            Benchmark::Add,
            Benchmark::Reg,
            Benchmark::Erd,
            Benchmark::Bar,
            Benchmark::Is,
            Benchmark::Xy,
            Benchmark::Hs,
            Benchmark::IsN,
            Benchmark::XyN,
            Benchmark::HsN,
            Benchmark::Vqe,
        ];
        let mut names: Vec<&str> = all.iter().map(|b| b.abbreviation()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all.len());
    }

    #[test]
    fn expectation_classification_matches_paper() {
        assert!(!Benchmark::Qft.computes_expectation());
        assert!(!Benchmark::Add.computes_expectation());
        assert!(Benchmark::Reg.computes_expectation());
        assert!(Benchmark::Vqe.computes_expectation());
        assert!(Benchmark::HsN.computes_expectation());
    }
}
