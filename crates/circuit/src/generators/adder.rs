use crate::Circuit;
use rand::prelude::*;
use rand::rngs::StdRng;

/// The Cuccaro ripple-carry adder on `2*bits + 2` qubits (ADD benchmark).
///
/// The circuit adds two `bits`-bit registers `a` and `b` in place
/// (`b ← a + b`) using a single ancilla (the incoming carry) plus one carry-out
/// qubit, which is the "one ancilla" property the paper highlights. Input
/// registers are initialised to random computational-basis values drawn from
/// `seed` so the circuit is non-trivial; pass the same seed to reproduce it.
///
/// Qubit layout: `0` = carry-in, `1 + 2i` = `a_i`, `2 + 2i` = `b_i`,
/// `2*bits + 1` = carry-out.
///
/// ```rust
/// use qrcc_circuit::generators::ripple_carry_adder;
///
/// let c = ripple_carry_adder(4, 1);
/// assert_eq!(c.num_qubits(), 10);
/// ```
///
/// # Panics
///
/// Panics if `bits == 0`.
pub fn ripple_carry_adder(bits: usize, seed: u64) -> Circuit {
    assert!(bits > 0, "adder needs at least one bit");
    let n = 2 * bits + 2;
    let mut c = Circuit::new(n);
    c.set_name(format!("adder_{bits}bit"));
    let a = |i: usize| 1 + 2 * i;
    let b = |i: usize| 2 + 2 * i;
    let cin = 0;
    let cout = 2 * bits + 1;

    // Random input preparation.
    let mut rng = StdRng::seed_from_u64(seed);
    for i in 0..bits {
        if rng.gen::<bool>() {
            c.x(a(i));
        }
        if rng.gen::<bool>() {
            c.x(b(i));
        }
    }

    let maj = |c: &mut Circuit, x: usize, y: usize, z: usize| {
        c.cx(z, y).cx(z, x).ccx(x, y, z);
    };
    let uma = |c: &mut Circuit, x: usize, y: usize, z: usize| {
        c.ccx(x, y, z).cx(z, x).cx(x, y);
    };

    maj(&mut c, cin, b(0), a(0));
    for i in 1..bits {
        maj(&mut c, a(i - 1), b(i), a(i));
    }
    c.cx(a(bits - 1), cout);
    for i in (1..bits).rev() {
        uma(&mut c, a(i - 1), b(i), a(i));
    }
    uma(&mut c, cin, b(0), a(0));
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qubit_count_is_2n_plus_2() {
        for bits in 1..6 {
            let c = ripple_carry_adder(bits, 0);
            assert_eq!(c.num_qubits(), 2 * bits + 2);
        }
    }

    #[test]
    fn only_one_and_two_qubit_gates() {
        let c = ripple_carry_adder(5, 3);
        assert!(c.operations().iter().all(|op| op.qubits().len() <= 2));
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(ripple_carry_adder(4, 9), ripple_carry_adder(4, 9));
    }

    #[test]
    fn two_qubit_gate_count_grows_linearly() {
        let small = ripple_carry_adder(2, 1).two_qubit_gate_count();
        let large = ripple_carry_adder(4, 1).two_qubit_gate_count();
        // each extra bit adds one MAJ and one UMA block (8 two-qubit gates each)
        assert_eq!(large - small, 2 * 16);
    }

    #[test]
    #[should_panic(expected = "at least one bit")]
    fn zero_bits_rejected() {
        ripple_carry_adder(0, 0);
    }
}
