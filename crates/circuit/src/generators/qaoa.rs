use crate::graph::{self, Graph};
use crate::Circuit;
use rand::prelude::*;
use rand::rngs::StdRng;

/// A `p`-layer QAOA ansatz for the MaxCut problem on `graph` (REG / ERD /
/// BAR benchmarks).
///
/// Layer `l` applies `RZZ(γ_l)` on every edge followed by `RX(β_l)` on every
/// node, after an initial Hadamard layer. The angles are drawn uniformly from
/// `(0, π)` using `seed` (the paper evaluates cutting quality, not QAOA
/// optimality, so any fixed angles are representative).
///
/// ```rust
/// use qrcc_circuit::{generators::qaoa, graph};
///
/// let g = graph::random_regular(8, 3, 1);
/// let c = qaoa(&g, 1, 42);
/// assert_eq!(c.num_qubits(), 8);
/// assert_eq!(c.two_qubit_gate_count(), g.num_edges());
/// ```
pub fn qaoa(graph: &Graph, layers: usize, seed: u64) -> Circuit {
    let n = graph.num_nodes();
    let mut c = Circuit::new(n);
    c.set_name(format!("qaoa_p{layers}_{n}q"));
    let mut rng = StdRng::seed_from_u64(seed);
    for q in 0..n {
        c.h(q);
    }
    for _ in 0..layers {
        let gamma: f64 = rng.gen_range(0.0..std::f64::consts::PI);
        let beta: f64 = rng.gen_range(0.0..std::f64::consts::PI);
        for &(a, b) in graph.edges() {
            c.rzz(gamma, a, b);
        }
        for q in 0..n {
            c.rx(beta, q);
        }
    }
    c
}

/// QAOA on a random `m`-regular graph with `n` nodes (REG benchmark,
/// `m = 5` by default in the paper).
pub fn qaoa_regular(n: usize, m: usize, layers: usize, seed: u64) -> (Circuit, Graph) {
    let g = graph::random_regular(n, m, seed);
    let mut c = qaoa(&g, layers, seed.wrapping_add(1));
    c.set_name(format!("REG_m{m}_{n}q"));
    (c, g)
}

/// QAOA on an Erdős–Rényi G(n, p) graph (ERD benchmark, `p = 0.1` by default
/// in the paper).
pub fn qaoa_erdos_renyi(n: usize, p: f64, layers: usize, seed: u64) -> (Circuit, Graph) {
    let g = graph::erdos_renyi(n, p, seed);
    let mut c = qaoa(&g, layers, seed.wrapping_add(1));
    c.set_name(format!("ERD_p{p}_{n}q"));
    (c, g)
}

/// QAOA on a Barabási–Albert graph with attachment `m` (BAR benchmark,
/// `m = 3` by default in the paper).
pub fn qaoa_barabasi_albert(n: usize, m: usize, layers: usize, seed: u64) -> (Circuit, Graph) {
    let g = graph::barabasi_albert(n, m, seed);
    let mut c = qaoa(&g, layers, seed.wrapping_add(1));
    c.set_name(format!("BAR_m{m}_{n}q"));
    (c, g)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qaoa_structure() {
        let g = graph::random_regular(10, 3, 2);
        let c = qaoa(&g, 2, 3);
        assert_eq!(c.two_qubit_gate_count(), 2 * g.num_edges());
        // initial H layer + p layers of rx on every node
        assert_eq!(c.single_qubit_gate_count(), 10 + 2 * 10);
        assert!(c.operations().iter().filter_map(|o| o.as_gate()).all(|g| g.params_finite()));
    }

    #[test]
    fn all_two_qubit_gates_are_gate_cuttable() {
        let g = graph::erdos_renyi(12, 0.3, 5);
        let c = qaoa(&g, 1, 6);
        for op in c.operations().iter().filter(|o| o.is_two_qubit_gate()) {
            assert!(op.as_gate().unwrap().is_gate_cuttable());
        }
    }

    #[test]
    fn named_variants_set_names_and_return_graphs() {
        let (c, g) = qaoa_regular(8, 3, 1, 10);
        assert!(c.name().starts_with("REG"));
        assert_eq!(g.num_nodes(), 8);
        let (c, g) = qaoa_erdos_renyi(8, 0.2, 1, 10);
        assert!(c.name().starts_with("ERD"));
        assert_eq!(g.num_nodes(), 8);
        let (c, g) = qaoa_barabasi_albert(8, 2, 1, 10);
        assert!(c.name().starts_with("BAR"));
        assert_eq!(g.num_nodes(), 8);
    }

    #[test]
    fn deterministic_per_seed() {
        let g = graph::random_regular(6, 3, 7);
        assert_eq!(qaoa(&g, 1, 5), qaoa(&g, 1, 5));
        assert_ne!(qaoa(&g, 1, 5), qaoa(&g, 1, 6));
    }
}
