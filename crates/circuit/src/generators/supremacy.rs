use crate::Circuit;
use rand::prelude::*;
use rand::rngs::StdRng;
use std::f64::consts::FRAC_PI_2;

/// A Google-style random "quantum supremacy" circuit on a `rows × cols`
/// qubit grid (SPM benchmark).
///
/// Each cycle applies a random single-qubit gate from {√X, √Y, T} to every
/// qubit followed by a layer of CZ gates drawn from one of four
/// edge-colouring patterns of the 2-D grid, cycling through the patterns.
/// The construction follows the structure of the circuits used in the
/// quantum-supremacy characterisation experiments; exact gate choices are
/// randomised from `seed`.
///
/// ```rust
/// use qrcc_circuit::generators::supremacy;
///
/// let c = supremacy(3, 5, 8, 7);
/// assert_eq!(c.num_qubits(), 15);
/// assert!(c.two_qubit_gate_count() > 0);
/// ```
pub fn supremacy(rows: usize, cols: usize, cycles: usize, seed: u64) -> Circuit {
    let n = rows * cols;
    let mut c = Circuit::new(n);
    c.set_name(format!("supremacy_{rows}x{cols}_d{cycles}"));
    let mut rng = StdRng::seed_from_u64(seed);
    let idx = move |r: usize, col: usize| r * cols + col;

    // Four CZ patterns: horizontal pairs starting at even/odd columns, and
    // vertical pairs starting at even/odd rows.
    type EdgePattern = Box<dyn Fn() -> Vec<(usize, usize)>>;
    let patterns: [EdgePattern; 4] = [
        Box::new(move || {
            let mut edges = Vec::new();
            for r in 0..rows {
                let mut col = 0;
                while col + 1 < cols {
                    edges.push((idx(r, col), idx(r, col + 1)));
                    col += 2;
                }
            }
            edges
        }),
        Box::new(move || {
            let mut edges = Vec::new();
            for r in 0..rows {
                let mut col = 1;
                while col + 1 < cols {
                    edges.push((idx(r, col), idx(r, col + 1)));
                    col += 2;
                }
            }
            edges
        }),
        Box::new(move || {
            let mut edges = Vec::new();
            for col in 0..cols {
                let mut r = 0;
                while r + 1 < rows {
                    edges.push((idx(r, col), idx(r + 1, col)));
                    r += 2;
                }
            }
            edges
        }),
        Box::new(move || {
            let mut edges = Vec::new();
            for col in 0..cols {
                let mut r = 1;
                while r + 1 < rows {
                    edges.push((idx(r, col), idx(r + 1, col)));
                    r += 2;
                }
            }
            edges
        }),
    ];

    // Initial Hadamard layer.
    for q in 0..n {
        c.h(q);
    }
    for cycle in 0..cycles {
        for q in 0..n {
            match rng.gen_range(0..3) {
                0 => {
                    c.sx(q);
                }
                1 => {
                    c.ry(FRAC_PI_2, q);
                }
                _ => {
                    c.t(q);
                }
            }
        }
        for &(a, b) in &patterns[cycle % 4]() {
            c.cz(a, b);
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(supremacy(3, 3, 6, 1), supremacy(3, 3, 6, 1));
        assert_ne!(supremacy(3, 3, 6, 1), supremacy(3, 3, 6, 2));
    }

    #[test]
    fn every_qubit_gets_single_qubit_gates_each_cycle() {
        let cycles = 5;
        let c = supremacy(2, 3, cycles, 3);
        // 6 initial H + 6 random single-qubit gates per cycle
        assert_eq!(c.single_qubit_gate_count(), 6 + 6 * cycles);
    }

    #[test]
    fn cz_layers_only_touch_grid_neighbours() {
        let rows = 3;
        let cols = 4;
        let c = supremacy(rows, cols, 8, 11);
        for op in c.operations().iter().filter(|o| o.is_two_qubit_gate()) {
            let qs = op.qubits();
            let (a, b) = (qs[0].index(), qs[1].index());
            let (ra, ca) = (a / cols, a % cols);
            let (rb, cb) = (b / cols, b % cols);
            let manhattan = ra.abs_diff(rb) + ca.abs_diff(cb);
            assert_eq!(manhattan, 1, "cz between non-neighbours {a},{b}");
        }
    }

    #[test]
    fn low_depth_circuit_has_no_two_qubit_gates_when_single_row_vertical_pattern() {
        // a 1 x n grid exercises only horizontal patterns
        let c = supremacy(1, 4, 4, 5);
        assert!(c.two_qubit_gate_count() > 0);
    }
}
