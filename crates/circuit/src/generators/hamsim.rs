use crate::graph::{self, Graph};
use crate::Circuit;

/// The 2-local Hamiltonian families simulated by the IS / XY / HS benchmarks
/// (and their next-nearest-neighbour variants IS-n / XY-n / HS-n).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HamiltonianKind {
    /// 2-D transverse-field Ising model: ZZ couplings plus an X field.
    TransverseFieldIsing,
    /// XY model: XX + YY couplings.
    Xy,
    /// Heisenberg model: XX + YY + ZZ couplings.
    Heisenberg,
}

impl HamiltonianKind {
    /// The paper's abbreviation for the nearest-neighbour variant.
    pub fn abbreviation(&self) -> &'static str {
        match self {
            HamiltonianKind::TransverseFieldIsing => "IS",
            HamiltonianKind::Xy => "XY",
            HamiltonianKind::Heisenberg => "HS",
        }
    }
}

/// A first-order Trotterised simulation circuit of a 2-local Hamiltonian on a
/// `rows × cols` square lattice.
///
/// * `kind` selects the interaction terms (see [`HamiltonianKind`]).
/// * `next_nearest` adds diagonal couplings (the `-n` benchmark variants).
/// * `steps` is the number of Trotter steps and `dt` the step size.
///
/// All two-qubit interactions are emitted as a single RZZ (possibly
/// conjugated by local basis changes for XX/YY), so every interaction is
/// gate-cuttable.
///
/// ```rust
/// use qrcc_circuit::generators::{hamiltonian_simulation, HamiltonianKind};
///
/// let (c, g) = hamiltonian_simulation(HamiltonianKind::Xy, 2, 3, false, 1, 0.1);
/// assert_eq!(c.num_qubits(), 6);
/// assert_eq!(c.two_qubit_gate_count(), 2 * g.num_edges());
/// ```
pub fn hamiltonian_simulation(
    kind: HamiltonianKind,
    rows: usize,
    cols: usize,
    next_nearest: bool,
    steps: usize,
    dt: f64,
) -> (Circuit, Graph) {
    let g = graph::lattice_2d(rows, cols, next_nearest);
    let n = g.num_nodes();
    let mut c = Circuit::new(n);
    let suffix = if next_nearest { "-n" } else { "" };
    c.set_name(format!("{}{}_{}x{}", kind.abbreviation(), suffix, rows, cols));

    for _ in 0..steps {
        match kind {
            HamiltonianKind::TransverseFieldIsing => {
                for &(a, b) in g.edges() {
                    c.rzz(2.0 * dt, a, b);
                }
                for q in 0..n {
                    c.rx(2.0 * dt, q);
                }
            }
            HamiltonianKind::Xy => {
                for &(a, b) in g.edges() {
                    c.xx_via_rzz(2.0 * dt, a, b);
                    c.yy_via_rzz(2.0 * dt, a, b);
                }
            }
            HamiltonianKind::Heisenberg => {
                for &(a, b) in g.edges() {
                    c.xx_via_rzz(2.0 * dt, a, b);
                    c.yy_via_rzz(2.0 * dt, a, b);
                    c.rzz(2.0 * dt, a, b);
                }
            }
        }
    }
    (c, g)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ising_gate_counts() {
        let (c, g) =
            hamiltonian_simulation(HamiltonianKind::TransverseFieldIsing, 3, 3, false, 2, 0.1);
        assert_eq!(c.two_qubit_gate_count(), 2 * g.num_edges());
        assert_eq!(c.single_qubit_gate_count(), 2 * 9);
    }

    #[test]
    fn heisenberg_has_three_interactions_per_edge() {
        let (c, g) = hamiltonian_simulation(HamiltonianKind::Heisenberg, 2, 3, false, 1, 0.05);
        assert_eq!(c.two_qubit_gate_count(), 3 * g.num_edges());
    }

    #[test]
    fn next_nearest_variant_adds_couplings() {
        let (nn, _) = hamiltonian_simulation(HamiltonianKind::Xy, 3, 3, false, 1, 0.1);
        let (nnn, _) = hamiltonian_simulation(HamiltonianKind::Xy, 3, 3, true, 1, 0.1);
        assert!(nnn.two_qubit_gate_count() > nn.two_qubit_gate_count());
        assert!(nnn.name().contains("-n"));
    }

    #[test]
    fn every_two_qubit_gate_is_gate_cuttable() {
        for kind in [
            HamiltonianKind::TransverseFieldIsing,
            HamiltonianKind::Xy,
            HamiltonianKind::Heisenberg,
        ] {
            let (c, _) = hamiltonian_simulation(kind, 2, 2, true, 1, 0.2);
            for op in c.operations().iter().filter(|o| o.is_two_qubit_gate()) {
                assert!(op.as_gate().unwrap().is_gate_cuttable());
            }
        }
    }
}
