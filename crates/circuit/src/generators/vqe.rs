use crate::Circuit;
use rand::prelude::*;
use rand::rngs::StdRng;

/// A linear two-local VQE ansatz of the kind used for hydrogen-chain
/// simulations (VQE benchmark): alternating layers of per-qubit RY rotations
/// and a linear CX entangling chain, with a final rotation layer.
///
/// Rotation angles are drawn from `seed` (the cutting evaluation does not
/// depend on the variational optimum).
///
/// ```rust
/// use qrcc_circuit::generators::vqe_two_local;
///
/// let c = vqe_two_local(6, 2, 3);
/// assert_eq!(c.num_qubits(), 6);
/// assert_eq!(c.two_qubit_gate_count(), 2 * 5);
/// ```
pub fn vqe_two_local(n: usize, reps: usize, seed: u64) -> Circuit {
    let mut c = Circuit::new(n);
    c.set_name(format!("vqe_twolocal_{n}q_r{reps}"));
    let mut rng = StdRng::seed_from_u64(seed);
    let rotation_layer = |c: &mut Circuit, rng: &mut StdRng| {
        for q in 0..n {
            c.ry(rng.gen_range(-std::f64::consts::PI..std::f64::consts::PI), q);
        }
    };
    for _ in 0..reps {
        rotation_layer(&mut c, &mut rng);
        for q in 0..n.saturating_sub(1) {
            c.cx(q, q + 1);
        }
    }
    rotation_layer(&mut c, &mut rng);
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structure_counts() {
        let c = vqe_two_local(5, 3, 1);
        assert_eq!(c.two_qubit_gate_count(), 3 * 4);
        assert_eq!(c.single_qubit_gate_count(), (3 + 1) * 5);
    }

    #[test]
    fn single_qubit_circuit_has_no_entanglers() {
        let c = vqe_two_local(1, 2, 1);
        assert_eq!(c.two_qubit_gate_count(), 0);
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(vqe_two_local(4, 2, 9), vqe_two_local(4, 2, 9));
        assert_ne!(vqe_two_local(4, 2, 9), vqe_two_local(4, 2, 10));
    }

    #[test]
    fn entangling_chain_is_linear() {
        let c = vqe_two_local(6, 1, 2);
        for op in c.operations().iter().filter(|o| o.is_two_qubit_gate()) {
            let qs = op.qubits();
            assert_eq!(qs[1].index(), qs[0].index() + 1);
        }
    }
}
