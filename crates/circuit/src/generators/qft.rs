use crate::Circuit;
use std::f64::consts::PI;

/// The `n`-qubit Quantum Fourier Transform, including the final qubit-order
/// reversing SWAP network (QFT benchmark).
///
/// The controlled-phase ladder gives the circuit its characteristic
/// all-to-all connectivity, which is what makes it the hardest benchmark to
/// cut in the paper's evaluation.
///
/// ```rust
/// use qrcc_circuit::generators::qft;
///
/// let c = qft(4);
/// assert_eq!(c.num_qubits(), 4);
/// // 6 controlled-phase gates + 2 swaps
/// assert_eq!(c.two_qubit_gate_count(), 8);
/// ```
pub fn qft(n: usize) -> Circuit {
    let mut c = qft_no_swap(n);
    for i in 0..n / 2 {
        c.swap(i, n - 1 - i);
    }
    c.set_name(format!("qft_{n}"));
    c
}

/// The `n`-qubit QFT without the final SWAP network.
pub fn qft_no_swap(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    c.set_name(format!("qft_noswap_{n}"));
    for i in 0..n {
        c.h(i);
        for j in (i + 1)..n {
            let angle = PI / f64::powi(2.0, (j - i) as i32);
            c.cp(angle, j, i);
        }
    }
    c
}

/// The approximate QFT: controlled-phase rotations with angle smaller than
/// `π / 2^(degree-1)` are dropped (AQFT benchmark).
///
/// `degree = n` reproduces the exact QFT ladder; smaller degrees remove the
/// long-range (small-angle) interactions, which is why AQFT is much easier to
/// cut than QFT.
///
/// # Panics
///
/// Panics if `degree == 0`.
pub fn aqft(n: usize, degree: usize) -> Circuit {
    assert!(degree > 0, "approximation degree must be at least 1");
    let mut c = Circuit::new(n);
    c.set_name(format!("aqft_{n}_{degree}"));
    for i in 0..n {
        c.h(i);
        for j in (i + 1)..n {
            let distance = j - i;
            if distance < degree {
                let angle = PI / f64::powi(2.0, distance as i32);
                c.cp(angle, j, i);
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qft_gate_counts() {
        let n = 5;
        let c = qft_no_swap(n);
        assert_eq!(c.single_qubit_gate_count(), n);
        assert_eq!(c.two_qubit_gate_count(), n * (n - 1) / 2);
        let with_swaps = qft(n);
        assert_eq!(with_swaps.two_qubit_gate_count(), n * (n - 1) / 2 + n / 2);
    }

    #[test]
    fn aqft_with_full_degree_equals_qft_ladder() {
        let a = aqft(6, 6);
        let q = qft_no_swap(6);
        assert_eq!(a.two_qubit_gate_count(), q.two_qubit_gate_count());
    }

    #[test]
    fn aqft_drops_long_range_interactions() {
        let a = aqft(8, 3);
        // each qubit i interacts only with i+1 and i+2
        assert_eq!(a.two_qubit_gate_count(), 7 + 6);
        assert!(a.two_qubit_gate_count() < qft_no_swap(8).two_qubit_gate_count());
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn aqft_rejects_zero_degree() {
        aqft(4, 0);
    }

    #[test]
    fn qft_of_one_qubit_is_a_hadamard() {
        let c = qft(1);
        assert_eq!(c.gate_count(), 1);
        assert_eq!(c.two_qubit_gate_count(), 0);
    }
}
