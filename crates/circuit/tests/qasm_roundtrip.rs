//! Property test: the OpenQASM parser is the exporter's inverse.
//!
//! The remote execution transport ships circuits as `to_qasm` text and
//! parses them back on the worker, so `from_qasm(to_qasm(c))` must
//! reproduce `c` **structurally** (equal registers, equal operation
//! sequences, bit-exact parameters) for every circuit the benchmark
//! generators can produce — they jointly exercise the whole gate set
//! (H/T/SX/U3 singles, CX/CZ/CP/RZZ/RXX/SWAP twos, measure).

use proptest::prelude::*;
use qrcc_circuit::generators::{self, HamiltonianKind};
use qrcc_circuit::{qasm, Circuit};

/// One circuit from each of the paper's generator families, over a small
/// range of sizes and seeds.
fn generator_circuit() -> impl Strategy<Value = Circuit> {
    (0..9usize, 0..3usize, 0..1_000u64).prop_map(|(family, size, seed)| {
        let n = 4 + size;
        match family {
            0 => generators::qft(n),
            1 => generators::aqft(n, 2),
            2 => generators::qft_no_swap(n),
            3 => generators::supremacy(2, 2 + size, 3, seed),
            4 => generators::ripple_carry_adder(2 + size, seed),
            5 => generators::qaoa_regular(n, 2, 1, seed).0,
            6 => generators::qaoa_erdos_renyi(n, 0.5, 1, seed).0,
            7 => {
                let kind = match seed % 3 {
                    0 => HamiltonianKind::TransverseFieldIsing,
                    1 => HamiltonianKind::Xy,
                    _ => HamiltonianKind::Heisenberg,
                };
                generators::hamiltonian_simulation(kind, 2, 2 + size, seed % 2 == 0, 1, 0.1).0
            }
            _ => generators::vqe_two_local(n, 1 + size % 2, seed),
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn from_qasm_inverts_to_qasm_on_generator_circuits(circuit in generator_circuit()) {
        let text = qasm::to_qasm(&circuit);
        let parsed = qasm::from_qasm(&text).unwrap();
        prop_assert!(parsed.structurally_equal(&circuit), "parsed circuit differs structurally");
        prop_assert_eq!(parsed.structural_hash(), circuit.structural_hash());
        prop_assert_eq!(parsed.num_qubits(), circuit.num_qubits());
        prop_assert_eq!(parsed.num_clbits(), circuit.num_clbits());
        // serialising the parsed circuit reproduces the wire text exactly
        prop_assert_eq!(qasm::to_qasm(&parsed), text);
    }

    #[test]
    fn measured_circuits_round_trip_with_their_classical_register(
        circuit in generator_circuit()
    ) {
        let mut measured = circuit;
        measured.measure_all();
        let parsed = qasm::from_qasm(&qasm::to_qasm(&measured)).unwrap();
        prop_assert!(parsed.structurally_equal(&measured));
        prop_assert_eq!(parsed.num_clbits(), measured.num_clbits());
    }
}
