//! `QrccServer`: a TCP worker that serves any local
//! [`ExecutionBackend`](qrcc_core::execute::ExecutionBackend) to remote
//! [`RemoteBackend`](crate::RemoteBackend) clients.
//!
//! The server is deliberately boring infrastructure: a
//! [`std::net::TcpListener`] accept loop on its own thread, one serving
//! thread per connection (the protocol is request/response per connection,
//! so thread-per-connection is the simplest correct concurrency model and
//! the backend itself parallelises batches internally), graceful shutdown,
//! and aggregate statistics. Circuits arrive as OpenQASM text and are parsed
//! with [`qrcc_circuit::qasm::from_qasm`]; a circuit that fails to parse or
//! to execute fails **individually** (a [`Frame::CircuitFailed`] reply)
//! while the rest of its batch still runs — mirroring how the in-process
//! batch API reports per-circuit errors.

use crate::proto::{
    self, BatchTelemetry, Capabilities, Frame, HealthState, MetricsReport, ProtoError,
    TraceContext, WireErrorKind, PROTOCOL_VERSION,
};
use parking_lot::Mutex;
use qrcc_circuit::{qasm, Circuit};
use qrcc_core::analyze;
use qrcc_core::cache::{
    merge_distributions, CacheLookup, CacheStats, ResultCache, ResultCachePolicy,
};
use qrcc_core::execute::ExecutionBackend;
use qrcc_core::CoreError;
use std::io::{self, Read};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How often blocked connection reads wake up to check the shutdown flag.
const SHUTDOWN_POLL: Duration = Duration::from_millis(100);

/// Cap on individual blocking writes to a client. A client that stops
/// reading (its socket buffer fills) errors the connection out instead of
/// wedging the connection thread — and with it [`ServerHandle::shutdown`] —
/// forever.
const WRITE_TIMEOUT: Duration = Duration::from_secs(30);

/// Default **cumulative** cap on all reply writes of one batch (tunable via
/// [`QrccServer::with_batch_write_budget`]). The per-syscall
/// [`WRITE_TIMEOUT`] alone cannot bound an adversarial *trickle-reading*
/// client: one that drains a few bytes just often enough keeps every write
/// syscall under the timeout while stretching the batch reply out
/// indefinitely, pinning the connection thread. The budget bounds the whole
/// reply; generous enough that a healthy client never notices.
const BATCH_WRITE_BUDGET: Duration = Duration::from_secs(120);

/// How long a connection may sit before its `ClientHello` arrives. Port
/// scanners and health probes that hold the socket without speaking are
/// dropped after this, so they cannot pin connection threads.
const HANDSHAKE_DEADLINE: Duration = Duration::from_secs(10);

/// How long an established connection may idle between frames before the
/// server reaps it. Long enough to comfortably outlive dispatch gaps
/// between batches; a half-open peer (died without RST) therefore leaks its
/// thread only this long. Clients probe pooled connections on checkout and
/// transparently redial ones the server reaped.
const IDLE_DEADLINE: Duration = Duration::from_secs(900);

/// Once a frame has started arriving, the longest the stream may stall
/// without delivering another byte of it.
const FRAME_STALL: Duration = Duration::from_secs(30);

/// Default aggregate queue depth (batches in flight) at which
/// [`Frame::GetHealth`] reports [`HealthState::Overloaded`]. Each in-flight
/// batch pins one connection thread, so this bounds "healthy but saturated"
/// well before thread exhaustion. Tunable via
/// [`QrccServer::with_overload_threshold`].
const DEFAULT_OVERLOAD_THRESHOLD: u64 = 64;

/// Default live-metrics window served on [`Frame::GetMetrics`]: quantiles
/// and rates cover the last 10 s, rotating in 1 s buckets. Tunable via
/// [`QrccServer::with_metrics_window`].
const DEFAULT_WINDOW: Duration = Duration::from_secs(10);
const DEFAULT_WINDOW_BUCKETS: usize = 10;

/// Aggregate counters of one server, also folded per connection (every
/// connection thread owns a [`ConnectionStats`] and merges it live).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted since the server started.
    pub connections: u64,
    /// Batches served to completion (a `BatchDone` frame was sent).
    pub batches: u64,
    /// Circuits that executed successfully.
    pub circuits_ok: u64,
    /// Circuits that failed (parse error or backend error).
    pub circuits_failed: u64,
    /// Connections dropped over protocol violations (bad handshake,
    /// malformed or unexpected frames).
    pub protocol_errors: u64,
    /// Circuits served entirely from the result cache (no backend call).
    pub cache_hits: u64,
    /// Circuits served partially from the cache: only the missing shots ran.
    pub cache_delta_hits: u64,
    /// Circuits that found nothing usable in the result cache (0 when no
    /// cache is attached — lookups never happen).
    pub cache_misses: u64,
    /// Device shots the result cache absorbed across all connections.
    pub cache_shots_saved: u64,
    /// End-to-end batch service latency (microseconds, parse through the
    /// last reply frame) as a mergeable log-bucketed histogram — ask it for
    /// `p50()`/`p99()`/`p999()` instead of a single mean field. Always
    /// recorded; tracing only affects the per-batch span subtrees.
    pub batch_latency_us: qrcc_core::Histogram,
    /// Batches currently executing or queued across all connections (each
    /// in-flight batch occupies one connection thread).
    pub queue_depth: u64,
    /// The deepest the aggregate queue has ever been.
    pub queue_high_water: u64,
    /// Connections currently open (as opposed to `connections`, which
    /// counts accepts since boot).
    pub open_connections: u64,
}

impl ServerStats {
    /// Folds these counters into a [`MetricsSnapshot`] under the `server.`
    /// namespace — the obs adapter that lets a server show up as a section
    /// of a [`QrccReport`](qrcc_core::obs::QrccReport) next to dispatch,
    /// cache and reconstruction telemetry.
    pub fn metrics(&self) -> qrcc_core::obs::MetricsSnapshot {
        qrcc_core::obs::MetricsSnapshot::default()
            .with_counter("server.connections", self.connections)
            .with_counter("server.batches", self.batches)
            .with_counter("server.circuits_ok", self.circuits_ok)
            .with_counter("server.circuits_failed", self.circuits_failed)
            .with_counter("server.protocol_errors", self.protocol_errors)
            .with_counter("server.cache_hits", self.cache_hits)
            .with_counter("server.cache_delta_hits", self.cache_delta_hits)
            .with_counter("server.cache_misses", self.cache_misses)
            .with_counter("server.cache_shots_saved", self.cache_shots_saved)
            .with_gauge("server.queue_depth", self.queue_depth as f64)
            .with_gauge("server.queue_high_water", self.queue_high_water as f64)
            .with_gauge("server.open_connections", self.open_connections as f64)
            .with_histogram("server.batch_latency_us", self.batch_latency_us.clone())
    }
}

/// The live last-N-seconds view behind [`Frame::GetMetrics`]: windowed
/// batch latency plus request/failure rate counters, all rotated on the
/// same grid.
#[derive(Debug)]
struct WindowState {
    latency: qrcc_core::obs::WindowedHistogram,
    requests: qrcc_core::obs::RateCounter,
    failures: qrcc_core::obs::RateCounter,
}

impl WindowState {
    fn new(window: Duration, buckets: usize) -> Self {
        WindowState {
            latency: qrcc_core::obs::WindowedHistogram::new(window, buckets),
            requests: qrcc_core::obs::RateCounter::new(window, buckets),
            failures: qrcc_core::obs::RateCounter::new(window, buckets),
        }
    }
}

#[derive(Debug)]
struct StatsInner {
    connections: AtomicU64,
    open_connections: AtomicU64,
    batches: AtomicU64,
    circuits_ok: AtomicU64,
    circuits_failed: AtomicU64,
    protocol_errors: AtomicU64,
    cache_hits: AtomicU64,
    cache_delta_hits: AtomicU64,
    cache_misses: AtomicU64,
    cache_shots_saved: AtomicU64,
    queue_depth: AtomicU64,
    queue_high_water: AtomicU64,
    /// Set by [`ServerHandle::begin_drain`] (and by shutdown, which drains
    /// first): [`Frame::GetHealth`] reports [`HealthState::Draining`] while
    /// existing batches finish.
    draining: AtomicBool,
    overload_threshold: u64,
    batch_latency: Mutex<qrcc_core::Histogram>,
    window: Mutex<WindowState>,
}

impl StatsInner {
    fn new(window: Duration, buckets: usize, overload_threshold: u64) -> Self {
        StatsInner {
            connections: AtomicU64::new(0),
            open_connections: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            circuits_ok: AtomicU64::new(0),
            circuits_failed: AtomicU64::new(0),
            protocol_errors: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_delta_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            cache_shots_saved: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            queue_high_water: AtomicU64::new(0),
            draining: AtomicBool::new(false),
            overload_threshold,
            batch_latency: Mutex::new(qrcc_core::Histogram::new()),
            window: Mutex::new(WindowState::new(window, buckets)),
        }
    }

    fn snapshot(&self) -> ServerStats {
        ServerStats {
            connections: self.connections.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            circuits_ok: self.circuits_ok.load(Ordering::Relaxed),
            circuits_failed: self.circuits_failed.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_delta_hits: self.cache_delta_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            cache_shots_saved: self.cache_shots_saved.load(Ordering::Relaxed),
            batch_latency_us: self.batch_latency.lock().clone(),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            queue_high_water: self.queue_high_water.load(Ordering::Relaxed),
            open_connections: self.open_connections.load(Ordering::Relaxed),
        }
    }

    /// Readiness verdict from the live flags: draining wins over overload,
    /// overload wins over accepting.
    fn health(&self) -> (HealthState, u64, u64, u64) {
        let depth = self.queue_depth.load(Ordering::Relaxed);
        let state = if self.draining.load(Ordering::Relaxed) {
            HealthState::Draining
        } else if depth >= self.overload_threshold {
            HealthState::Overloaded
        } else {
            HealthState::Accepting
        };
        (
            state,
            depth,
            self.queue_high_water.load(Ordering::Relaxed),
            self.open_connections.load(Ordering::Relaxed),
        )
    }

    /// The scrape payload for [`Frame::GetMetrics`]: full-registry
    /// Prometheus text plus the structured windowed snapshot.
    fn metrics_report(&self) -> MetricsReport {
        let snapshot = self.snapshot();
        let (latency, req_rate, fail_rate) = {
            let window = self.window.lock();
            (window.latency.snapshot(), window.requests.rate(), window.failures.rate())
        };
        let metrics = snapshot.metrics();
        MetricsReport {
            prometheus: metrics.prometheus(),
            windowed: vec![("server.window_batch_latency_us".into(), latency)],
            counters: metrics.counters.clone(),
            gauges: metrics
                .gauges
                .iter()
                .cloned()
                .chain([
                    ("server.window_req_rate".to_owned(), req_rate),
                    ("server.window_error_rate".to_owned(), fail_rate),
                ])
                .collect(),
        }
    }
}

/// What one connection did; merged into the aggregate [`ServerStats`] as it
/// happens so a live snapshot always adds up.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConnectionStats {
    /// Batches this connection served to completion.
    pub batches: u64,
    /// Circuits executed successfully on this connection.
    pub circuits_ok: u64,
    /// Circuits that failed on this connection.
    pub circuits_failed: u64,
    /// Circuits this connection served entirely from the result cache.
    pub cache_hits: u64,
    /// Circuits this connection served partially (delta hits).
    pub cache_delta_hits: u64,
    /// Circuits this connection looked up without finding anything usable.
    pub cache_misses: u64,
    /// Device shots the cache absorbed for this connection.
    pub cache_shots_saved: u64,
    /// Most batches this connection ever had in flight at once. The
    /// request/response protocol serialises batches per connection, so this
    /// is at most 1 — it records whether the connection ever did real work,
    /// and keeps the per-connection ledger summing to the aggregate
    /// high-water's lower bound.
    pub queue_high_water: u64,
}

/// A bound-but-not-yet-serving QRCC worker.
///
/// Binding and serving are separate so tests and fleets can bind port 0
/// (ephemeral), read the assigned address, hand it to clients, and only
/// then start serving:
///
/// ```rust,no_run
/// use qrcc_core::execute::ExactBackend;
/// use qrcc_net::QrccServer;
///
/// let server = QrccServer::bind("127.0.0.1:0", ExactBackend::capped(3)).unwrap();
/// let addr = server.local_addr().unwrap();
/// let handle = server.spawn();
/// // ... connect RemoteBackends to `addr` ...
/// handle.shutdown();
/// ```
pub struct QrccServer {
    listener: TcpListener,
    backend: Arc<dyn ExecutionBackend + Send + Sync>,
    write_budget: Duration,
    cache: Option<Arc<ResultCache>>,
    overload_threshold: u64,
    window: Duration,
    window_buckets: usize,
}

impl QrccServer {
    /// Binds a listener (use port 0 for an ephemeral port) serving
    /// `backend`.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from binding.
    pub fn bind(
        addr: impl ToSocketAddrs,
        backend: impl ExecutionBackend + Send + 'static,
    ) -> io::Result<Self> {
        Ok(QrccServer {
            listener: TcpListener::bind(addr)?,
            backend: Arc::new(backend),
            write_budget: BATCH_WRITE_BUDGET,
            cache: None,
            overload_threshold: DEFAULT_OVERLOAD_THRESHOLD,
            window: DEFAULT_WINDOW,
            window_buckets: DEFAULT_WINDOW_BUCKETS,
        })
    }

    /// Sets the aggregate queue depth (batches in flight) at which
    /// [`Frame::GetHealth`] reports [`HealthState::Overloaded`]
    /// (default 64).
    #[must_use]
    pub fn with_overload_threshold(mut self, threshold: u64) -> Self {
        self.overload_threshold = threshold.max(1);
        self
    }

    /// Sets the live-metrics window served on [`Frame::GetMetrics`]
    /// (default: last 10 s in 1 s rotation buckets).
    #[must_use]
    pub fn with_metrics_window(mut self, window: Duration, buckets: usize) -> Self {
        self.window = window;
        self.window_buckets = buckets;
        self
    }

    /// Attaches a result cache built from `policy` (a disabled policy
    /// detaches any cache, so config-driven callers can pass theirs through
    /// unconditionally). The server consults the cache **before** its
    /// backend: full hits answer without executing, delta hits execute only
    /// the missing shots, and every fresh execution is written back. With a
    /// persisted policy the snapshot is loaded here and written back at
    /// shutdown, so a restarted worker keeps serving its previous results.
    #[must_use]
    pub fn with_result_cache(mut self, policy: &ResultCachePolicy) -> Self {
        self.cache = policy.enabled.then(|| Arc::new(ResultCache::open(policy)));
        self
    }

    /// Attaches an existing (possibly shared) result cache.
    #[must_use]
    pub fn with_shared_result_cache(mut self, cache: Arc<ResultCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Sets the cumulative deadline for all reply writes of one batch
    /// (default 120 s). A connection whose client drains replies slower than
    /// this — including a trickle-reader that keeps every individual write
    /// under the per-syscall timeout — is dropped when the budget runs out.
    #[must_use]
    pub fn with_batch_write_budget(mut self, budget: Duration) -> Self {
        self.write_budget = budget;
        self
    }

    /// The bound address — with port 0, the ephemeral port the OS assigned.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Starts the accept loop on a background thread and returns the handle
    /// controlling the server's lifetime.
    pub fn spawn(self) -> ServerHandle {
        let addr = self.listener.local_addr().expect("bound listener has an address");
        let shutdown = Arc::new(AtomicBool::new(false));
        let stats =
            Arc::new(StatsInner::new(self.window, self.window_buckets, self.overload_threshold));
        let connections: Arc<Mutex<Vec<JoinHandle<ConnectionStats>>>> =
            Arc::new(Mutex::new(Vec::new()));
        let completed: Arc<Mutex<Vec<ConnectionStats>>> = Arc::new(Mutex::new(Vec::new()));
        let cache = self.cache.clone();
        let accept = {
            let shutdown = Arc::clone(&shutdown);
            let stats = Arc::clone(&stats);
            let connections = Arc::clone(&connections);
            let completed = Arc::clone(&completed);
            let write_budget = self.write_budget;
            let cache = cache.clone();
            std::thread::spawn(move || {
                accept_loop(
                    self.listener,
                    self.backend,
                    write_budget,
                    cache,
                    shutdown,
                    stats,
                    connections,
                    completed,
                )
            })
        };
        ServerHandle { addr, shutdown, stats, connections, completed, cache, accept: Some(accept) }
    }
}

/// A running server: address, live statistics, graceful shutdown.
///
/// Dropping the handle shuts the server down (all connection threads are
/// joined), so a test or example cannot leak a worker past its scope.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    stats: Arc<StatsInner>,
    connections: Arc<Mutex<Vec<JoinHandle<ConnectionStats>>>>,
    /// Ledgers of connections already reaped by the accept loop.
    completed: Arc<Mutex<Vec<ConnectionStats>>>,
    cache: Option<Arc<ResultCache>>,
    accept: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A live snapshot of the aggregate statistics.
    pub fn stats(&self) -> ServerStats {
        self.stats.snapshot()
    }

    /// Marks the server as draining: [`Frame::GetHealth`] replies
    /// [`HealthState::Draining`] from now on, telling monitors and routers
    /// to send new work elsewhere while existing batches finish.
    /// [`ServerHandle::shutdown`] calls this first, so a health-polling
    /// client observes the drain before the sockets go away.
    pub fn begin_drain(&self) {
        self.stats.draining.store(true, Ordering::Relaxed);
    }

    /// The server's current readiness verdict, exactly as
    /// [`Frame::GetHealth`] would report it over the wire.
    pub fn health(&self) -> crate::proto::HealthReport {
        let (state, queue_depth, queue_high_water, connections) = self.stats.health();
        crate::proto::HealthReport { state, queue_depth, queue_high_water, connections }
    }

    /// The server's result cache, if one was attached.
    pub fn result_cache(&self) -> Option<&Arc<ResultCache>> {
        self.cache.as_ref()
    }

    /// Counters of the attached result cache, or `None` without one.
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_ref().map(|cache| cache.stats())
    }

    /// Stops accepting, asks every connection thread to wind down, joins
    /// them, and returns the per-connection ledgers. In-flight batches
    /// finish their current backend call; their results may be lost to the
    /// disconnect, which clients see as
    /// [`CoreError::BackendUnavailable`] and the dispatcher re-routes.
    pub fn shutdown(mut self) -> Vec<ConnectionStats> {
        self.shutdown_impl()
    }

    fn shutdown_impl(&mut self) -> Vec<ConnectionStats> {
        self.begin_drain();
        self.shutdown.store(true, Ordering::Relaxed);
        // wake the blocking accept with a throwaway connection; an
        // unspecified bind address (0.0.0.0 / ::) is not connectable
        // everywhere, so aim at the same-family loopback instead
        let ip = match self.addr.ip() {
            std::net::IpAddr::V4(ip) if ip.is_unspecified() => {
                std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST)
            }
            std::net::IpAddr::V6(ip) if ip.is_unspecified() => {
                std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST)
            }
            ip => ip,
        };
        let _ = TcpStream::connect((ip, self.addr.port()));
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        let mut ledgers: Vec<ConnectionStats> = self.completed.lock().drain(..).collect();
        ledgers.extend(self.connections.lock().drain(..).filter_map(|handle| handle.join().ok()));
        // all connections are down: snapshot the cache so a restarted worker
        // resumes with everything this one learned
        if let Some(cache) = &self.cache {
            let _ = cache.persist();
        }
        ledgers
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        let _ = self.shutdown_impl();
    }
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.addr)
            .field("stats", &self.stats.snapshot())
            .finish()
    }
}

#[allow(clippy::too_many_arguments)]
fn accept_loop(
    listener: TcpListener,
    backend: Arc<dyn ExecutionBackend + Send + Sync>,
    write_budget: Duration,
    cache: Option<Arc<ResultCache>>,
    shutdown: Arc<AtomicBool>,
    stats: Arc<StatsInner>,
    connections: Arc<Mutex<Vec<JoinHandle<ConnectionStats>>>>,
    completed: Arc<Mutex<Vec<ConnectionStats>>>,
) {
    for stream in listener.incoming() {
        if shutdown.load(Ordering::Relaxed) {
            break;
        }
        let Ok(stream) = stream else {
            // fd exhaustion and friends error every accept: back off instead
            // of pinning a core until the condition clears
            std::thread::sleep(Duration::from_millis(20));
            continue;
        };
        stats.connections.fetch_add(1, Ordering::Relaxed);
        let backend = Arc::clone(&backend);
        let shutdown = Arc::clone(&shutdown);
        let stats = Arc::clone(&stats);
        let cache = cache.clone();
        let handle = std::thread::spawn(move || {
            stats.open_connections.fetch_add(1, Ordering::Relaxed);
            let ledger = serve_connection(
                stream,
                backend,
                write_budget,
                cache,
                shutdown,
                Arc::clone(&stats),
            );
            stats.open_connections.fetch_sub(1, Ordering::Relaxed);
            ledger
        });
        // reap finished connection threads — joining them, so their ledgers
        // survive into `shutdown()`'s return value — and keep the handle
        // list proportional to *live* connections, not total accepts
        let finished: Vec<JoinHandle<ConnectionStats>> = {
            let mut held = connections.lock();
            let (done, live): (Vec<_>, Vec<_>) = held.drain(..).partition(JoinHandle::is_finished);
            *held = live;
            held.push(handle);
            done
        };
        let mut reaped: Vec<ConnectionStats> =
            finished.into_iter().filter_map(|h| h.join().ok()).collect();
        completed.lock().append(&mut reaped);
    }
}

/// What one blocking-with-shutdown-polling frame read produced.
enum ConnRead {
    Frame(Frame),
    /// The peer closed the connection cleanly between frames.
    Closed,
    /// The server is shutting down.
    ShuttingDown,
    /// The peer violated the protocol or the stream died mid-frame.
    Failed(ProtoError),
}

/// Reads one frame, polling the shutdown flag while no frame has started.
/// Once the first length byte arrives the read commits (interrupting
/// mid-frame would desynchronise the stream), checking the flag only
/// between read syscalls. A peer that sends nothing for `idle_deadline`,
/// or stalls [`FRAME_STALL`] mid-frame, is dropped — a half-open socket
/// (peer died without RST) can therefore pin the thread only for a bounded
/// time.
fn read_frame_polling(
    stream: &mut TcpStream,
    shutdown: &AtomicBool,
    idle_deadline: Duration,
) -> ConnRead {
    let mut last_progress = std::time::Instant::now();
    let mut len_buf = [0u8; 4];
    let mut got = 0usize;
    while got < 4 {
        if shutdown.load(Ordering::Relaxed) {
            return ConnRead::ShuttingDown;
        }
        let deadline = if got == 0 { idle_deadline } else { FRAME_STALL };
        if last_progress.elapsed() > deadline {
            return if got == 0 { ConnRead::Closed } else { ConnRead::Failed(stalled()) };
        }
        match stream.read(&mut len_buf[got..]) {
            Ok(0) => {
                return if got == 0 { ConnRead::Closed } else { ConnRead::Failed(eof()) };
            }
            Ok(n) => {
                got += n;
                last_progress = std::time::Instant::now();
            }
            Err(e) if retryable(&e) => continue,
            Err(e) => return ConnRead::Failed(ProtoError::Io(e)),
        }
    }
    let len = match proto::validate_len(u32::from_be_bytes(len_buf)) {
        Ok(len) => len,
        Err(e) => return ConnRead::Failed(e),
    };
    let mut payload = vec![0u8; len];
    let mut got = 0usize;
    while got < len {
        if shutdown.load(Ordering::Relaxed) {
            return ConnRead::ShuttingDown;
        }
        if last_progress.elapsed() > FRAME_STALL {
            return ConnRead::Failed(stalled());
        }
        match stream.read(&mut payload[got..]) {
            Ok(0) => return ConnRead::Failed(eof()),
            Ok(n) => {
                got += n;
                last_progress = std::time::Instant::now();
            }
            Err(e) if retryable(&e) => continue,
            Err(e) => return ConnRead::Failed(ProtoError::Io(e)),
        }
    }
    match proto::decode_frame(&payload) {
        Ok(frame) => ConnRead::Frame(frame),
        Err(e) => ConnRead::Failed(e),
    }
}

/// A canonical 1-qubit qubit-reuse circuit (measure, reset, re-use): asking
/// the backend's [`ExecutionBackend::can_run`] about it probes whether the
/// worker supports mid-circuit measurement and reset, without the trait
/// needing a dedicated query.
fn mid_circuit_probe() -> Circuit {
    let mut probe = Circuit::new(1);
    probe.h(0).measure(0, 0).reset(0).h(0).measure(0, 1);
    probe
}

fn eof() -> ProtoError {
    ProtoError::Io(io::Error::new(io::ErrorKind::UnexpectedEof, "peer closed mid-frame"))
}

fn stalled() -> ProtoError {
    ProtoError::Io(io::Error::new(io::ErrorKind::TimedOut, "peer stalled mid-frame"))
}

fn retryable(e: &io::Error) -> bool {
    matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
}

/// Serves one client connection: handshake, then batches and heartbeats
/// until the client disconnects, violates the protocol, or the server shuts
/// down.
fn serve_connection(
    mut stream: TcpStream,
    backend: Arc<dyn ExecutionBackend + Send + Sync>,
    write_budget: Duration,
    cache: Option<Arc<ResultCache>>,
    shutdown: Arc<AtomicBool>,
    stats: Arc<StatsInner>,
) -> ConnectionStats {
    let mut conn = ConnectionStats::default();
    let _ = stream.set_read_timeout(Some(SHUTDOWN_POLL));
    let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
    let _ = stream.set_nodelay(true);

    // Handshake: the very first frame must be a matching ClientHello.
    match read_frame_polling(&mut stream, &shutdown, HANDSHAKE_DEADLINE) {
        ConnRead::Frame(Frame::ClientHello { version }) if version == PROTOCOL_VERSION => {
            let capabilities = Capabilities {
                max_qubits: backend.max_qubits().map(|q| q as u64),
                shots_per_circuit: backend.shots_per_circuit(),
                supports_mid_circuit: backend.can_run(&mid_circuit_probe()),
                label: backend.label(),
            };
            let hello = Frame::ServerHello { version: PROTOCOL_VERSION, capabilities };
            if proto::write_frame(&mut stream, &hello).is_err() {
                return conn;
            }
        }
        ConnRead::Frame(Frame::ClientHello { version }) => {
            stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
            let _ = proto::write_frame(
                &mut stream,
                &Frame::Error {
                    kind: WireErrorKind::VersionMismatch,
                    message: format!(
                        "server speaks protocol version {PROTOCOL_VERSION}, client sent {version}"
                    ),
                },
            );
            return conn;
        }
        ConnRead::Frame(_) => {
            stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
            let _ = proto::write_frame(
                &mut stream,
                &Frame::Error {
                    kind: WireErrorKind::Protocol,
                    message: "expected ClientHello as the first frame".into(),
                },
            );
            return conn;
        }
        ConnRead::Failed(error) => {
            // port scans and health probes just disconnect (an Io failure);
            // only undecodable bytes count as protocol violations
            if !matches!(error, ProtoError::Io(_)) {
                stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
            }
            return conn;
        }
        ConnRead::Closed | ConnRead::ShuttingDown => return conn,
    }

    loop {
        match read_frame_polling(&mut stream, &shutdown, IDLE_DEADLINE) {
            ConnRead::Frame(Frame::SubmitBatch { batch, circuits, shots, trace }) => {
                if let Some(shots) = &shots {
                    if shots.len() != circuits.len() {
                        stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                        let _ = proto::write_frame(
                            &mut stream,
                            &Frame::Error {
                                kind: WireErrorKind::Protocol,
                                message: format!(
                                    "batch {batch} carries {} circuits but {} shot counts",
                                    circuits.len(),
                                    shots.len()
                                ),
                            },
                        );
                        return conn;
                    }
                }
                let served = serve_batch(
                    &mut stream,
                    backend.as_ref(),
                    write_budget,
                    cache.as_deref(),
                    batch,
                    &circuits,
                    shots.as_deref(),
                    trace,
                    &stats,
                    &mut conn,
                );
                if served.is_err() {
                    return conn; // client gone mid-stream
                }
            }
            ConnRead::Frame(Frame::Ping { nonce }) => {
                if proto::write_frame(&mut stream, &Frame::Pong { nonce }).is_err() {
                    return conn;
                }
            }
            ConnRead::Frame(Frame::GetMetrics) => {
                let reply = Frame::MetricsReply { report: stats.metrics_report() };
                if proto::write_frame(&mut stream, &reply).is_err() {
                    return conn;
                }
            }
            ConnRead::Frame(Frame::GetHealth) => {
                let (state, queue_depth, queue_high_water, connections) = stats.health();
                let reply =
                    Frame::HealthReply { state, queue_depth, queue_high_water, connections };
                if proto::write_frame(&mut stream, &reply).is_err() {
                    return conn;
                }
            }
            ConnRead::Frame(Frame::Error { .. }) => return conn, // client aborted
            ConnRead::Frame(_) => {
                stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                let _ = proto::write_frame(
                    &mut stream,
                    &Frame::Error {
                        kind: WireErrorKind::Protocol,
                        message: "unexpected frame (wanted SubmitBatch, Ping, GetMetrics \
                                  or GetHealth)"
                            .into(),
                    },
                );
                return conn;
            }
            ConnRead::Failed(error) => {
                // disconnects mid-frame are ordinary client failures;
                // undecodable bytes are protocol errors worth counting
                if !matches!(error, ProtoError::Io(_)) {
                    stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                    let _ = proto::write_frame(
                        &mut stream,
                        &Frame::Error { kind: WireErrorKind::Protocol, message: error.to_string() },
                    );
                }
                return conn;
            }
            ConnRead::Closed | ConnRead::ShuttingDown => {
                let _ = stream.shutdown(Shutdown::Both);
                return conn;
            }
        }
    }
}

/// Enforces the server's **cumulative** per-batch write deadline on top of
/// the per-syscall `SO_SNDTIMEO`: every write first checks the shared
/// deadline, then bounds the syscall itself by the remaining budget. The
/// per-syscall timeout alone is not enough — a trickle-reading client that
/// drains a few bytes just often enough keeps every individual write under
/// [`WRITE_TIMEOUT`] while stretching the reply stream out forever. With the
/// deadline re-armed per call, the worst-case overrun is one syscall that
/// started just before the budget ran out (≤ 2× the budget overall).
struct DeadlineWriter<'a> {
    stream: &'a mut TcpStream,
    deadline: std::time::Instant,
}

impl io::Write for DeadlineWriter<'_> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let Some(remaining) = self.deadline.checked_duration_since(std::time::Instant::now())
        else {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "client drained batch replies too slowly: cumulative write budget exhausted",
            ));
        };
        // a zero socket timeout means "block forever" — clamp up instead
        let _ = self.stream.set_write_timeout(Some(remaining.max(Duration::from_millis(1))));
        self.stream.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.stream.flush()
    }
}

/// Parses and pre-flights one submitted batch, executes what survives, then
/// streams one reply frame per circuit (in index order) and the closing
/// `BatchDone`. Circuits fail **individually** — a parse error, a static
/// pre-flight rejection ([`qrcc_core::analyze::preflight_backend`]: too wide
/// for this worker, or needing mid-circuit support it lacks), or a backend
/// error each produce a `CircuitFailed` while the rest of the batch still
/// runs. The backend runs the surviving circuits as **one** call —
/// preserving its internal parallelism and the deterministic per-circuit
/// sampling streams — so the first reply frame is written only once the
/// batch call returns; the client waits on that with its (long) reply
/// timeout. All reply writes run under the cumulative `write_budget`
/// deadline (see [`DeadlineWriter`]). Folds the outcome into both the
/// aggregate `stats` and the connection's `conn` ledger at the same point —
/// before `BatchDone` — so the two can never disagree; `Err` means the
/// reply stream died.
#[allow(clippy::too_many_arguments)]
fn serve_batch(
    stream: &mut TcpStream,
    backend: &dyn ExecutionBackend,
    write_budget: Duration,
    cache: Option<&ResultCache>,
    batch: u64,
    circuits: &[String],
    shots: Option<&[u64]>,
    trace: Option<TraceContext>,
    stats: &StatsInner,
    conn: &mut ConnectionStats,
) -> io::Result<()> {
    // The batch occupies one slot of the live queue from arrival to the
    // last reply write — the gauge `GetHealth` reads for its overload
    // verdict. The guard keeps the gauge honest on every early return.
    struct QueueGuard<'a>(&'a StatsInner);
    impl Drop for QueueGuard<'_> {
        fn drop(&mut self) {
            self.0.queue_depth.fetch_sub(1, Ordering::Relaxed);
        }
    }
    let depth = stats.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
    stats.queue_high_water.fetch_max(depth, Ordering::Relaxed);
    conn.queue_high_water = conn.queue_high_water.max(1);
    let _queue = QueueGuard(stats);

    // Phase clock for the span subtree returned to a tracing client. The
    // server does not run the client's tracer; it hand-builds
    // [`RemoteSpan`](qrcc_core::obs::RemoteSpan)s from one `Instant` plus a
    // Unix-epoch anchor so the client can rebase them into its own timeline.
    let batch_started = std::time::Instant::now();
    let batch_unix_us = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0);

    /// How one submitted circuit is answered.
    enum Slot {
        /// Parse error or static pre-flight rejection.
        Rejected(CoreError),
        /// Served entirely from the result cache — no backend call.
        Cached(Vec<f64>),
        /// Runs on the backend; a delta hit carries the cached base
        /// distribution to merge with the fresh top-up.
        Execute { delta: Option<(Vec<f64>, u64)> },
    }

    // Parse and statically pre-flight every circuit; rejected circuits fail
    // individually, exactly like backend failures, and the rest of its
    // batch still runs. Parse errors keep their line/column; pre-flight
    // rejections carry the rendered QL diagnostic and stay `Backend`-kinded
    // so the client's dispatcher re-routes them to a capable worker.
    // Surviving circuits then consult the result cache: full hits skip the
    // backend entirely, delta hits execute only the missing shots.
    let mut slots: Vec<Slot> = Vec::with_capacity(circuits.len());
    let mut payload: Vec<Circuit> = Vec::with_capacity(circuits.len());
    let mut sub_shots: Vec<u64> = Vec::new();
    let mut any_delta = false;
    let (mut c_hits, mut c_delta, mut c_miss, mut c_saved) = (0u64, 0u64, 0u64, 0u64);
    for (i, text) in circuits.iter().enumerate() {
        match qasm::from_qasm(text) {
            Ok(circuit) => match analyze::preflight_backend(&circuit, backend) {
                Some(diagnostic) => slots.push(Slot::Rejected(CoreError::BackendUnavailable {
                    backend: backend.label(),
                    reason: format!("rejected by pre-flight analysis: {diagnostic}"),
                })),
                None => {
                    let requested = match shots {
                        Some(s) => Some(s[i]),
                        None => backend.shots_per_circuit(),
                    };
                    match cache.map(|c| c.lookup(&circuit, requested)) {
                        Some(CacheLookup::Hit(distribution)) => {
                            c_hits += 1;
                            c_saved += requested.unwrap_or(0);
                            slots.push(Slot::Cached(distribution));
                        }
                        Some(CacheLookup::Delta { base, base_shots, missing }) => {
                            c_delta += 1;
                            c_saved += base_shots;
                            any_delta = true;
                            payload.push(circuit);
                            sub_shots.push(missing);
                            slots.push(Slot::Execute { delta: Some((base, base_shots)) });
                        }
                        miss => {
                            if miss.is_some() {
                                c_miss += 1;
                            }
                            payload.push(circuit);
                            // a delta hit elsewhere in the batch switches the
                            // whole run to explicit counts, so misses carry
                            // theirs too (requested is Some whenever a delta
                            // can exist: deltas need a sampling backend)
                            sub_shots.push(requested.unwrap_or(0));
                            slots.push(Slot::Execute { delta: None });
                        }
                    }
                }
            },
            Err(e) => slots.push(Slot::Rejected(CoreError::Transport {
                detail: format!("qasm parse error: {e}"),
            })),
        }
    }

    let parse_us = batch_started.elapsed().as_micros() as u64;

    // A panicking backend must not kill the connection thread silently: the
    // panic becomes per-circuit failures the client's dispatcher can rescue,
    // mirroring the in-process dispatch workers.
    let explicit = shots.is_some() || any_delta;
    let run = std::panic::AssertUnwindSafe(|| {
        if explicit {
            backend.run_batch_with_shots(&payload, &sub_shots)
        } else {
            backend.run_batch(&payload)
        }
    });
    let results = std::panic::catch_unwind(run).unwrap_or_else(|_| {
        payload
            .iter()
            .map(|_| {
                Err(CoreError::BackendUnavailable {
                    backend: backend.label(),
                    reason: "backend panicked".into(),
                })
            })
            .collect()
    });
    let execute_us = batch_started.elapsed().as_micros() as u64;

    // Every reply write of this batch shares one cumulative deadline; the
    // per-syscall timeout is restored before returning so later batches and
    // control frames on this connection see the ordinary [`WRITE_TIMEOUT`].
    let mut writer = DeadlineWriter { stream, deadline: std::time::Instant::now() + write_budget };
    let mut results = results.into_iter();
    let mut executed = payload.into_iter().zip(sub_shots);
    let mut ok = 0u64;
    let mut failed = 0u64;
    for (index, slot) in slots.into_iter().enumerate() {
        let outcome = match slot {
            Slot::Rejected(rejection) => Err(rejection),
            Slot::Cached(distribution) => Ok(distribution),
            Slot::Execute { delta } => {
                let ran = executed.next();
                let fresh = results.next().unwrap_or_else(|| {
                    Err(CoreError::Transport {
                        detail: "backend returned fewer results than circuits".into(),
                    })
                });
                match (fresh, ran) {
                    (Ok(distribution), Some((circuit, ran_shots))) => {
                        // write the fresh (or merged) result back so the next
                        // request for this circuit hits
                        let sampled = backend.shots_per_circuit().is_some();
                        match delta {
                            Some((base, base_shots)) if sampled => {
                                let merged = merge_distributions(
                                    &base,
                                    base_shots,
                                    &distribution,
                                    ran_shots,
                                );
                                if let Some(cache) = cache {
                                    cache.store(&circuit, &merged, Some(base_shots + ran_shots));
                                }
                                Ok(merged)
                            }
                            _ => {
                                if let Some(cache) = cache {
                                    let stored = if sampled { Some(ran_shots) } else { None };
                                    cache.store(&circuit, &distribution, stored);
                                }
                                Ok(distribution)
                            }
                        }
                    }
                    (fresh, _) => fresh,
                }
            }
        };
        let (frame, succeeded) = match outcome {
            Ok(distribution) => {
                (Frame::CircuitResult { batch, index: index as u32, distribution }, true)
            }
            Err(error) => {
                // deterministic failures (the circuit did not parse) must
                // not look transient to the client's dispatcher
                let kind = match &error {
                    CoreError::Transport { .. } => WireErrorKind::Protocol,
                    _ => WireErrorKind::Backend,
                };
                let failed = Frame::CircuitFailed {
                    batch,
                    index: index as u32,
                    kind,
                    reason: error.to_string(),
                };
                (failed, false)
            }
        };
        match proto::write_frame(&mut writer, &frame) {
            Ok(()) => {
                if succeeded {
                    ok += 1;
                } else {
                    failed += 1;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                // the reply itself exceeds the frame cap (an enormous
                // distribution): deterministic and per-circuit, so degrade
                // to a failure instead of killing the whole connection
                failed += 1;
                proto::write_frame(
                    &mut writer,
                    &Frame::CircuitFailed {
                        batch,
                        index: index as u32,
                        kind: WireErrorKind::Protocol,
                        reason: format!("result does not fit one frame: {e}"),
                    },
                )?;
            }
            Err(e) => return Err(e),
        }
    }
    // fold into the aggregate and the connection ledger *before*
    // acknowledging the batch, so a client that saw `BatchDone` never reads
    // a stale snapshot, and the ledgers always agree with the aggregate
    stats.batches.fetch_add(1, Ordering::Relaxed);
    stats.circuits_ok.fetch_add(ok, Ordering::Relaxed);
    stats.circuits_failed.fetch_add(failed, Ordering::Relaxed);
    stats.cache_hits.fetch_add(c_hits, Ordering::Relaxed);
    stats.cache_delta_hits.fetch_add(c_delta, Ordering::Relaxed);
    stats.cache_misses.fetch_add(c_miss, Ordering::Relaxed);
    stats.cache_shots_saved.fetch_add(c_saved, Ordering::Relaxed);
    conn.batches += 1;
    conn.circuits_ok += ok;
    conn.circuits_failed += failed;
    conn.cache_hits += c_hits;
    conn.cache_delta_hits += c_delta;
    conn.cache_misses += c_miss;
    conn.cache_shots_saved += c_saved;
    // batch service latency is always recorded (it feeds
    // [`ServerStats::batch_latency_us`]); the span subtree and metric deltas
    // ride back only when the submission carried a trace context
    let batch_us = batch_started.elapsed().as_micros() as u64;
    stats.batch_latency.lock().record(batch_us);
    {
        // the same sample also lands in the live window behind GetMetrics,
        // together with this batch's request/failure counts
        let mut window = stats.window.lock();
        window.latency.record(batch_us);
        window.requests.add(1);
        if failed > 0 {
            window.failures.add(1);
        }
    }
    let telemetry = trace.map(|_| {
        let span = |id: u64, parent: u64, name: &str, start_us: u64, end_us: u64| {
            qrcc_core::obs::RemoteSpan {
                id,
                parent,
                name: name.to_string(),
                start_unix_us: batch_unix_us.saturating_add(start_us),
                duration_us: end_us.saturating_sub(start_us),
            }
        };
        let mut delta = qrcc_core::Histogram::new();
        delta.record(batch_us);
        BatchTelemetry {
            // ids live in the server's space (1..); the root parents at 0 so
            // the client's import grafts it under its own submit span
            spans: vec![
                span(1, 0, "server.batch", 0, batch_us),
                span(2, 1, "server.parse", 0, parse_us),
                span(3, 1, "server.execute", parse_us, execute_us),
                span(4, 1, "server.reply", execute_us, batch_us),
            ],
            counters: vec![
                ("server.circuits_ok".into(), ok),
                ("server.circuits_failed".into(), failed),
                ("server.cache_hits".into(), c_hits),
                ("server.cache_delta_hits".into(), c_delta),
                ("server.cache_shots_saved".into(), c_saved),
            ],
            histograms: vec![("server.batch_latency_us".into(), delta)],
        }
    });
    let done = proto::write_frame(
        &mut writer,
        &Frame::BatchDone { batch, executed: ok as u32, telemetry },
    );
    let _ = writer.stream.set_write_timeout(Some(WRITE_TIMEOUT));
    done?;
    Ok(())
}
