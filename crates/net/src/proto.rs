//! The QRCC wire protocol: versioned, length-prefixed binary frames.
//!
//! Every frame on the wire is `[u32 length (big-endian)][u8 tag][payload]`,
//! where `length` counts the tag byte plus the payload and is capped at
//! [`MAX_FRAME_LEN`] so a garbled peer cannot make the other side allocate
//! unboundedly. All integers are big-endian; floats travel as their IEEE-754
//! bit patterns; strings and lists are `u32`-length-prefixed.
//!
//! A session is: the client opens with [`Frame::ClientHello`] (protocol
//! version), the server answers with [`Frame::ServerHello`] carrying its
//! [`Capabilities`] (max qubits, default shots, label) — or rejects a
//! version mismatch with a typed [`Frame::Error`] — after which the client
//! may interleave batch submissions ([`Frame::SubmitBatch`], circuits as
//! OpenQASM text produced by [`qrcc_circuit::qasm::to_qasm`]) and heartbeats
//! ([`Frame::Ping`]/[`Frame::Pong`]). The server streams one
//! [`Frame::CircuitResult`] or [`Frame::CircuitFailed`] per submitted
//! circuit, in index order, and closes the batch with [`Frame::BatchDone`].

use std::fmt;
use std::io::{self, Read, Write};

/// The protocol version spoken by this build. A [`Frame::ClientHello`] with
/// any other version is rejected during the handshake with a typed
/// [`WireErrorKind::VersionMismatch`] error frame.
///
/// Version history: 1 — initial protocol; 2 — [`Frame::SubmitBatch`] may
/// carry a [`TraceContext`] and [`Frame::BatchDone`] may return the
/// server's [`BatchTelemetry`] (span subtree + metric deltas); 3 — the
/// live-scrape pair [`Frame::GetMetrics`]/[`Frame::MetricsReply`] and the
/// readiness pair [`Frame::GetHealth`]/[`Frame::HealthReply`], so a fleet
/// monitor can watch a worker without a batch round-trip.
pub const PROTOCOL_VERSION: u16 = 3;

/// Upper bound on one frame's `tag + payload` length. Frames announcing a
/// larger length are rejected before any payload is read.
pub const MAX_FRAME_LEN: u32 = 64 * 1024 * 1024;

/// What a worker can do, exchanged in the handshake so the client can answer
/// the scheduler's capability queries (`max_qubits`, `shots_per_circuit`,
/// `label`) without a network round trip.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Capabilities {
    /// The widest circuit the worker's backend accepts, or `None` when
    /// unbounded.
    pub max_qubits: Option<u64>,
    /// The backend's default shots per circuit, or `None` for exact
    /// backends.
    pub shots_per_circuit: Option<u64>,
    /// Whether the worker accepts circuits needing mid-circuit measurement
    /// or reset (probed against the backend at handshake time), so the
    /// router can avoid placing qubit-reuse circuits on workers that would
    /// deterministically reject them.
    pub supports_mid_circuit: bool,
    /// The backend's human-readable label.
    pub label: String,
}

/// Client-side tracing context attached to a [`Frame::SubmitBatch`]: the
/// submitting process's trace identity and the span the server's subtree
/// should graft under. Ids are only meaningful to the client; the server
/// never interprets them beyond echoing `parent_span` as its root's parent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// Opaque trace id of the submitting client (0 is valid but
    /// conventionally "unset").
    pub trace_id: u64,
    /// The client-side span the server's span subtree grafts under.
    pub parent_span: u64,
}

/// The server's observability payload returned on [`Frame::BatchDone`] when
/// the submission carried a [`TraceContext`]: the span subtree of this
/// batch's server-side execution (ids in the *server's* space — the client
/// remaps them on [`import`](qrcc_core::obs::Tracer::import)) plus metric
/// deltas attributable to the batch.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BatchTelemetry {
    /// The server-side span subtree; subtree roots have `parent == 0`.
    pub spans: Vec<qrcc_core::obs::RemoteSpan>,
    /// Counter deltas for this batch, e.g. `("server.circuits_ok", 3)`.
    pub counters: Vec<(String, u64)>,
    /// Histogram deltas for this batch (merged into the client's registry
    /// under the same names).
    pub histograms: Vec<(String, qrcc_core::obs::Histogram)>,
}

/// A server's readiness verdict, carried by [`Frame::HealthReply`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthState {
    /// Accepting new connections and batches.
    Accepting,
    /// Shutting down: existing batches finish, new work should go elsewhere.
    Draining,
    /// Queue depth at or above the server's overload threshold; healthy but
    /// saturated — back off before routing more work here.
    Overloaded,
}

impl HealthState {
    /// The state's stable wire code (0 accepting, 1 draining, 2
    /// overloaded) — also handy as a numeric gauge in merged fleet views.
    pub fn code(self) -> u8 {
        match self {
            HealthState::Accepting => 0,
            HealthState::Draining => 1,
            HealthState::Overloaded => 2,
        }
    }

    fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(HealthState::Accepting),
            1 => Some(HealthState::Draining),
            2 => Some(HealthState::Overloaded),
            _ => None,
        }
    }
}

impl fmt::Display for HealthState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HealthState::Accepting => write!(f, "accepting"),
            HealthState::Draining => write!(f, "draining"),
            HealthState::Overloaded => write!(f, "overloaded"),
        }
    }
}

/// A server's readiness verdict plus live queue occupancy — the decoded
/// form of [`Frame::HealthReply`], returned by client-side health probes
/// and by `ServerHandle::health`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthReport {
    /// Accepting, draining or overloaded.
    pub state: HealthState,
    /// Batches currently executing or queued across all connections.
    pub queue_depth: u64,
    /// The deepest the aggregate queue has ever been on this server.
    pub queue_high_water: u64,
    /// Connections currently open.
    pub connections: u64,
}

/// The server's live telemetry returned on [`Frame::MetricsReply`]: the
/// Prometheus text of its full registry plus the structured windowed view
/// (last-N-seconds histograms, counters and gauges) a fleet monitor merges
/// across workers.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsReport {
    /// Prometheus text exposition of the server's metrics registry.
    pub prometheus: String,
    /// Windowed histograms, e.g. `("server.window_batch_latency_us", h)` —
    /// samples from the last window only, mergeable across workers.
    pub windowed: Vec<(String, qrcc_core::obs::Histogram)>,
    /// Boot-to-now counters, e.g. `("server.batches", 12)`.
    pub counters: Vec<(String, u64)>,
    /// Instantaneous gauges, e.g. `("server.queue_depth", 2.0)`.
    pub gauges: Vec<(String, f64)>,
}

/// The typed cause carried by an [`Frame::Error`] frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireErrorKind {
    /// The peer speaks a different protocol version.
    VersionMismatch,
    /// The peer violated the protocol (unexpected or malformed frame).
    Protocol,
    /// The worker's backend failed in a way not attributable to a single
    /// circuit.
    Backend,
}

impl WireErrorKind {
    fn code(self) -> u8 {
        match self {
            WireErrorKind::VersionMismatch => 0,
            WireErrorKind::Protocol => 1,
            WireErrorKind::Backend => 2,
        }
    }

    fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(WireErrorKind::VersionMismatch),
            1 => Some(WireErrorKind::Protocol),
            2 => Some(WireErrorKind::Backend),
            _ => None,
        }
    }
}

/// One protocol frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Client → server, first frame of a connection.
    ClientHello {
        /// The client's [`PROTOCOL_VERSION`].
        version: u16,
    },
    /// Server → client, handshake reply.
    ServerHello {
        /// The server's [`PROTOCOL_VERSION`].
        version: u16,
        /// What the worker's backend can do.
        capabilities: Capabilities,
    },
    /// Client → server: execute a batch of circuits.
    SubmitBatch {
        /// Client-chosen batch identifier, echoed on every reply frame.
        batch: u64,
        /// One OpenQASM document per circuit
        /// ([`qrcc_circuit::qasm::to_qasm`]).
        circuits: Vec<String>,
        /// Per-circuit shot counts (same length as `circuits`), or `None`
        /// to run with the backend's defaults.
        shots: Option<Vec<u64>>,
        /// Tracing context of the submitting client, or `None` when the
        /// client runs with tracing off. A server that receives a context
        /// returns its span subtree on [`Frame::BatchDone`].
        trace: Option<TraceContext>,
    },
    /// Server → client: one circuit's distribution. Replies stream in index
    /// order once the worker's single batch call returns (the batch runs as
    /// one backend call to preserve its internal parallelism and
    /// deterministic sampling streams).
    CircuitResult {
        /// The submission's batch identifier.
        batch: u64,
        /// Index of the circuit within the submitted batch.
        index: u32,
        /// Probability distribution over the circuit's classical bits.
        distribution: Vec<f64>,
    },
    /// Server → client: one circuit failed on the worker (the other
    /// circuits of the batch still stream their results).
    CircuitFailed {
        /// The submission's batch identifier.
        batch: u64,
        /// Index of the circuit within the submitted batch.
        index: u32,
        /// The failure class: [`WireErrorKind::Backend`] for device faults
        /// (transient — worth retrying elsewhere),
        /// [`WireErrorKind::Protocol`] for deterministic ones (the circuit
        /// did not parse), so the client can preserve the error taxonomy.
        kind: WireErrorKind,
        /// Human-readable failure cause.
        reason: String,
    },
    /// Server → client: every circuit of the batch has been answered.
    BatchDone {
        /// The submission's batch identifier.
        batch: u64,
        /// Number of circuits that executed successfully.
        executed: u32,
        /// The server's span subtree and metric deltas for this batch;
        /// present iff the submission carried a [`TraceContext`].
        telemetry: Option<BatchTelemetry>,
    },
    /// Client → server (v3+): scrape the server's live metrics without a
    /// batch round-trip.
    GetMetrics,
    /// Server → client (v3+): the scrape reply.
    MetricsReply {
        /// Prometheus text plus the structured windowed snapshot.
        report: MetricsReport,
    },
    /// Client → server (v3+): ask for the server's readiness verdict.
    GetHealth,
    /// Server → client (v3+): readiness plus live queue occupancy.
    HealthReply {
        /// Accepting, draining or overloaded.
        state: HealthState,
        /// Batches currently executing or queued across all connections.
        queue_depth: u64,
        /// The deepest the aggregate queue has ever been on this server.
        queue_high_water: u64,
        /// Connections currently open.
        connections: u64,
    },
    /// Heartbeat request (either direction).
    Ping {
        /// Echoed by the matching [`Frame::Pong`].
        nonce: u64,
    },
    /// Heartbeat reply.
    Pong {
        /// The nonce of the [`Frame::Ping`] being answered.
        nonce: u64,
    },
    /// A typed failure; the sender closes the connection afterwards.
    Error {
        /// The failure class.
        kind: WireErrorKind,
        /// Human-readable description.
        message: String,
    },
}

const TAG_CLIENT_HELLO: u8 = 1;
const TAG_SERVER_HELLO: u8 = 2;
const TAG_SUBMIT_BATCH: u8 = 3;
const TAG_CIRCUIT_RESULT: u8 = 4;
const TAG_CIRCUIT_FAILED: u8 = 5;
const TAG_BATCH_DONE: u8 = 6;
const TAG_PING: u8 = 7;
const TAG_PONG: u8 = 8;
const TAG_ERROR: u8 = 9;
const TAG_GET_METRICS: u8 = 10;
const TAG_METRICS_REPLY: u8 = 11;
const TAG_GET_HEALTH: u8 = 12;
const TAG_HEALTH_REPLY: u8 = 13;

/// Why a frame could not be read.
#[derive(Debug)]
pub enum ProtoError {
    /// The underlying stream failed (disconnect, timeout, reset) — the
    /// transient class; clients map it to
    /// [`CoreError::BackendUnavailable`](qrcc_core::CoreError::BackendUnavailable).
    Io(io::Error),
    /// The peer sent bytes that do not decode as a frame — the protocol
    /// violation class; clients map it to
    /// [`CoreError::Transport`](qrcc_core::CoreError::Transport).
    Malformed {
        /// What failed to decode.
        detail: String,
    },
    /// The peer announced a frame larger than [`MAX_FRAME_LEN`].
    FrameTooLarge {
        /// The announced length.
        len: u32,
    },
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "i/o error: {e}"),
            ProtoError::Malformed { detail } => write!(f, "malformed frame: {detail}"),
            ProtoError::FrameTooLarge { len } => {
                write!(f, "frame length {len} exceeds the {MAX_FRAME_LEN}-byte cap")
            }
        }
    }
}

impl std::error::Error for ProtoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl ProtoError {
    /// Maps this protocol failure to the dispatch layer's error taxonomy:
    /// I/O failures (disconnects, timeouts) become
    /// [`CoreError::BackendUnavailable`](qrcc_core::CoreError::BackendUnavailable)
    /// — the transient class the dispatcher retries elsewhere — while
    /// malformed or oversized frames become
    /// [`CoreError::Transport`](qrcc_core::CoreError::Transport).
    pub fn into_core(self, backend: &str) -> qrcc_core::CoreError {
        match self {
            ProtoError::Io(e) => qrcc_core::CoreError::BackendUnavailable {
                backend: backend.to_string(),
                reason: format!("connection error: {e}"),
            },
            other => qrcc_core::CoreError::Transport { detail: other.to_string() },
        }
    }

    fn malformed(detail: impl Into<String>) -> Self {
        ProtoError::Malformed { detail: detail.into() }
    }
}

// ---- encoding ----------------------------------------------------------

fn put_u16(out: &mut Vec<u8>, value: u16) {
    out.extend_from_slice(&value.to_be_bytes());
}

fn put_u32(out: &mut Vec<u8>, value: u32) {
    out.extend_from_slice(&value.to_be_bytes());
}

fn put_u64(out: &mut Vec<u8>, value: u64) {
    out.extend_from_slice(&value.to_be_bytes());
}

fn put_opt_u64(out: &mut Vec<u8>, value: Option<u64>) {
    match value {
        Some(v) => {
            out.push(1);
            put_u64(out, v);
        }
        None => out.push(0),
    }
}

fn put_string(out: &mut Vec<u8>, value: &str) {
    put_u32(out, value.len() as u32);
    out.extend_from_slice(value.as_bytes());
}

/// The shared histogram codec: summary stats plus the sparse non-zero
/// buckets (used by [`BatchTelemetry`] and [`MetricsReport`]).
fn put_histogram(out: &mut Vec<u8>, histogram: &qrcc_core::obs::Histogram) {
    put_u64(out, histogram.count());
    put_u64(out, histogram.sum());
    put_u64(out, histogram.min().unwrap_or(0));
    put_u64(out, histogram.max().unwrap_or(0));
    let buckets = histogram.sparse_buckets();
    put_u32(out, buckets.len() as u32);
    for (index, count) in buckets {
        put_u32(out, index);
        put_u64(out, count);
    }
}

/// Serialises `frame` as `tag + payload` (without the length prefix).
fn encode(frame: &Frame) -> Vec<u8> {
    let mut out = Vec::new();
    match frame {
        Frame::ClientHello { version } => {
            out.push(TAG_CLIENT_HELLO);
            put_u16(&mut out, *version);
        }
        Frame::ServerHello { version, capabilities } => {
            out.push(TAG_SERVER_HELLO);
            put_u16(&mut out, *version);
            put_opt_u64(&mut out, capabilities.max_qubits);
            put_opt_u64(&mut out, capabilities.shots_per_circuit);
            out.push(capabilities.supports_mid_circuit as u8);
            put_string(&mut out, &capabilities.label);
        }
        Frame::SubmitBatch { batch, circuits, shots, trace } => {
            out.push(TAG_SUBMIT_BATCH);
            put_u64(&mut out, *batch);
            put_u32(&mut out, circuits.len() as u32);
            for circuit in circuits {
                put_string(&mut out, circuit);
            }
            match shots {
                Some(shots) => {
                    out.push(1);
                    put_u32(&mut out, shots.len() as u32);
                    for &s in shots {
                        put_u64(&mut out, s);
                    }
                }
                None => out.push(0),
            }
            match trace {
                Some(trace) => {
                    out.push(1);
                    put_u64(&mut out, trace.trace_id);
                    put_u64(&mut out, trace.parent_span);
                }
                None => out.push(0),
            }
        }
        Frame::CircuitResult { batch, index, distribution } => {
            out.push(TAG_CIRCUIT_RESULT);
            put_u64(&mut out, *batch);
            put_u32(&mut out, *index);
            put_u32(&mut out, distribution.len() as u32);
            for &p in distribution {
                put_u64(&mut out, p.to_bits());
            }
        }
        Frame::CircuitFailed { batch, index, kind, reason } => {
            out.push(TAG_CIRCUIT_FAILED);
            put_u64(&mut out, *batch);
            put_u32(&mut out, *index);
            out.push(kind.code());
            put_string(&mut out, reason);
        }
        Frame::BatchDone { batch, executed, telemetry } => {
            out.push(TAG_BATCH_DONE);
            put_u64(&mut out, *batch);
            put_u32(&mut out, *executed);
            match telemetry {
                Some(telemetry) => {
                    out.push(1);
                    put_u32(&mut out, telemetry.spans.len() as u32);
                    for span in &telemetry.spans {
                        put_u64(&mut out, span.id);
                        put_u64(&mut out, span.parent);
                        put_string(&mut out, &span.name);
                        put_u64(&mut out, span.start_unix_us);
                        put_u64(&mut out, span.duration_us);
                    }
                    put_u32(&mut out, telemetry.counters.len() as u32);
                    for (name, value) in &telemetry.counters {
                        put_string(&mut out, name);
                        put_u64(&mut out, *value);
                    }
                    put_u32(&mut out, telemetry.histograms.len() as u32);
                    for (name, histogram) in &telemetry.histograms {
                        put_string(&mut out, name);
                        put_histogram(&mut out, histogram);
                    }
                }
                None => out.push(0),
            }
        }
        Frame::GetMetrics => {
            out.push(TAG_GET_METRICS);
        }
        Frame::MetricsReply { report } => {
            out.push(TAG_METRICS_REPLY);
            put_string(&mut out, &report.prometheus);
            put_u32(&mut out, report.windowed.len() as u32);
            for (name, histogram) in &report.windowed {
                put_string(&mut out, name);
                put_histogram(&mut out, histogram);
            }
            put_u32(&mut out, report.counters.len() as u32);
            for (name, value) in &report.counters {
                put_string(&mut out, name);
                put_u64(&mut out, *value);
            }
            put_u32(&mut out, report.gauges.len() as u32);
            for (name, value) in &report.gauges {
                put_string(&mut out, name);
                put_u64(&mut out, value.to_bits());
            }
        }
        Frame::GetHealth => {
            out.push(TAG_GET_HEALTH);
        }
        Frame::HealthReply { state, queue_depth, queue_high_water, connections } => {
            out.push(TAG_HEALTH_REPLY);
            out.push(state.code());
            put_u64(&mut out, *queue_depth);
            put_u64(&mut out, *queue_high_water);
            put_u64(&mut out, *connections);
        }
        Frame::Ping { nonce } => {
            out.push(TAG_PING);
            put_u64(&mut out, *nonce);
        }
        Frame::Pong { nonce } => {
            out.push(TAG_PONG);
            put_u64(&mut out, *nonce);
        }
        Frame::Error { kind, message } => {
            out.push(TAG_ERROR);
            out.push(kind.code());
            put_string(&mut out, message);
        }
    }
    out
}

/// Writes one length-prefixed frame and flushes the stream.
///
/// # Errors
///
/// [`io::ErrorKind::InvalidData`] when the encoded frame would exceed
/// [`MAX_FRAME_LEN`] (the peer would reject it unread, so it is never
/// sent), plus the stream's I/O errors.
pub fn write_frame(stream: &mut impl Write, frame: &Frame) -> io::Result<()> {
    let payload = encode(frame);
    if payload.len() as u64 > MAX_FRAME_LEN as u64 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {} bytes exceeds the {MAX_FRAME_LEN}-byte cap", payload.len()),
        ));
    }
    stream.write_all(&(payload.len() as u32).to_be_bytes())?;
    stream.write_all(&payload)?;
    stream.flush()
}

// ---- decoding ----------------------------------------------------------

struct Decoder<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Decoder<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        if self.at + n > self.bytes.len() {
            return Err(ProtoError::malformed(format!(
                "payload truncated at byte {} (wanted {n} more of {})",
                self.at,
                self.bytes.len()
            )));
        }
        let slice = &self.bytes[self.at..self.at + n];
        self.at += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ProtoError> {
        Ok(u16::from_be_bytes(self.take(2)?.try_into().expect("two bytes")))
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().expect("four bytes")))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().expect("eight bytes")))
    }

    fn opt_u64(&mut self) -> Result<Option<u64>, ProtoError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u64()?)),
            flag => Err(ProtoError::malformed(format!("invalid option flag {flag}"))),
        }
    }

    fn string(&mut self) -> Result<String, ProtoError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| ProtoError::malformed("string is not valid utf-8"))
    }

    fn histogram(&mut self) -> Result<qrcc_core::obs::Histogram, ProtoError> {
        let count = self.u64()?;
        let sum = self.u64()?;
        let min = self.u64()?;
        let max = self.u64()?;
        let bucket_count = self.u32()? as usize;
        let mut buckets = Vec::with_capacity(bucket_count.min(1024));
        for _ in 0..bucket_count {
            buckets.push((self.u32()?, self.u64()?));
        }
        Ok(qrcc_core::obs::Histogram::from_sparse(count, sum, min, max, &buckets))
    }
}

/// Validates a frame's announced length before its payload is read.
///
/// # Errors
///
/// [`ProtoError::Malformed`] for empty frames, [`ProtoError::FrameTooLarge`]
/// beyond [`MAX_FRAME_LEN`].
pub fn validate_len(len: u32) -> Result<usize, ProtoError> {
    if len == 0 {
        return Err(ProtoError::malformed("zero-length frame"));
    }
    if len > MAX_FRAME_LEN {
        return Err(ProtoError::FrameTooLarge { len });
    }
    Ok(len as usize)
}

/// Decodes one `tag + payload` buffer (the bytes after the length prefix).
///
/// # Errors
///
/// [`ProtoError::Malformed`] for unknown tags, truncated payloads, or
/// trailing garbage.
pub fn decode_frame(payload: &[u8]) -> Result<Frame, ProtoError> {
    let mut d = Decoder { bytes: payload, at: 0 };
    let tag = d.u8()?;
    let frame = match tag {
        TAG_CLIENT_HELLO => Frame::ClientHello { version: d.u16()? },
        TAG_SERVER_HELLO => Frame::ServerHello {
            version: d.u16()?,
            capabilities: Capabilities {
                max_qubits: d.opt_u64()?,
                shots_per_circuit: d.opt_u64()?,
                supports_mid_circuit: d.u8()? != 0,
                label: d.string()?,
            },
        },
        TAG_SUBMIT_BATCH => {
            let batch = d.u64()?;
            let count = d.u32()? as usize;
            let mut circuits = Vec::with_capacity(count.min(1024));
            for _ in 0..count {
                circuits.push(d.string()?);
            }
            let shots = match d.u8()? {
                0 => None,
                1 => {
                    let count = d.u32()? as usize;
                    let mut shots = Vec::with_capacity(count.min(1024));
                    for _ in 0..count {
                        shots.push(d.u64()?);
                    }
                    Some(shots)
                }
                flag => return Err(ProtoError::malformed(format!("invalid shots flag {flag}"))),
            };
            let trace = match d.u8()? {
                0 => None,
                1 => Some(TraceContext { trace_id: d.u64()?, parent_span: d.u64()? }),
                flag => return Err(ProtoError::malformed(format!("invalid trace flag {flag}"))),
            };
            Frame::SubmitBatch { batch, circuits, shots, trace }
        }
        TAG_CIRCUIT_RESULT => {
            let batch = d.u64()?;
            let index = d.u32()?;
            let count = d.u32()? as usize;
            let mut distribution = Vec::with_capacity(count.min(1 << 20));
            for _ in 0..count {
                distribution.push(f64::from_bits(d.u64()?));
            }
            Frame::CircuitResult { batch, index, distribution }
        }
        TAG_CIRCUIT_FAILED => {
            let batch = d.u64()?;
            let index = d.u32()?;
            let code = d.u8()?;
            let kind = WireErrorKind::from_code(code)
                .ok_or_else(|| ProtoError::malformed(format!("unknown failure kind {code}")))?;
            Frame::CircuitFailed { batch, index, kind, reason: d.string()? }
        }
        TAG_BATCH_DONE => {
            let batch = d.u64()?;
            let executed = d.u32()?;
            let telemetry = match d.u8()? {
                0 => None,
                1 => {
                    let span_count = d.u32()? as usize;
                    let mut spans = Vec::with_capacity(span_count.min(1024));
                    for _ in 0..span_count {
                        spans.push(qrcc_core::obs::RemoteSpan {
                            id: d.u64()?,
                            parent: d.u64()?,
                            name: d.string()?,
                            start_unix_us: d.u64()?,
                            duration_us: d.u64()?,
                        });
                    }
                    let counter_count = d.u32()? as usize;
                    let mut counters = Vec::with_capacity(counter_count.min(1024));
                    for _ in 0..counter_count {
                        counters.push((d.string()?, d.u64()?));
                    }
                    let histogram_count = d.u32()? as usize;
                    let mut histograms = Vec::with_capacity(histogram_count.min(1024));
                    for _ in 0..histogram_count {
                        histograms.push((d.string()?, d.histogram()?));
                    }
                    Some(BatchTelemetry { spans, counters, histograms })
                }
                flag => {
                    return Err(ProtoError::malformed(format!("invalid telemetry flag {flag}")))
                }
            };
            Frame::BatchDone { batch, executed, telemetry }
        }
        TAG_GET_METRICS => Frame::GetMetrics,
        TAG_METRICS_REPLY => {
            let prometheus = d.string()?;
            let windowed_count = d.u32()? as usize;
            let mut windowed = Vec::with_capacity(windowed_count.min(1024));
            for _ in 0..windowed_count {
                windowed.push((d.string()?, d.histogram()?));
            }
            let counter_count = d.u32()? as usize;
            let mut counters = Vec::with_capacity(counter_count.min(1024));
            for _ in 0..counter_count {
                counters.push((d.string()?, d.u64()?));
            }
            let gauge_count = d.u32()? as usize;
            let mut gauges = Vec::with_capacity(gauge_count.min(1024));
            for _ in 0..gauge_count {
                gauges.push((d.string()?, f64::from_bits(d.u64()?)));
            }
            Frame::MetricsReply { report: MetricsReport { prometheus, windowed, counters, gauges } }
        }
        TAG_GET_HEALTH => Frame::GetHealth,
        TAG_HEALTH_REPLY => {
            let code = d.u8()?;
            let state = HealthState::from_code(code)
                .ok_or_else(|| ProtoError::malformed(format!("unknown health state {code}")))?;
            Frame::HealthReply {
                state,
                queue_depth: d.u64()?,
                queue_high_water: d.u64()?,
                connections: d.u64()?,
            }
        }
        TAG_PING => Frame::Ping { nonce: d.u64()? },
        TAG_PONG => Frame::Pong { nonce: d.u64()? },
        TAG_ERROR => {
            let code = d.u8()?;
            let kind = WireErrorKind::from_code(code)
                .ok_or_else(|| ProtoError::malformed(format!("unknown error kind {code}")))?;
            Frame::Error { kind, message: d.string()? }
        }
        unknown => return Err(ProtoError::malformed(format!("unknown frame tag {unknown}"))),
    };
    if d.at != payload.len() {
        return Err(ProtoError::malformed(format!(
            "{} trailing byte(s) after a complete frame",
            payload.len() - d.at
        )));
    }
    Ok(frame)
}

/// Reads one length-prefixed frame from the stream.
///
/// # Errors
///
/// [`ProtoError::Io`] for stream failures (including a clean disconnect,
/// surfaced as `UnexpectedEof`), [`ProtoError::FrameTooLarge`] /
/// [`ProtoError::Malformed`] for protocol violations.
pub fn read_frame(stream: &mut impl Read) -> Result<Frame, ProtoError> {
    let mut len_buf = [0u8; 4];
    stream.read_exact(&mut len_buf).map_err(ProtoError::Io)?;
    let len = validate_len(u32::from_be_bytes(len_buf))?;
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload).map_err(ProtoError::Io)?;
    decode_frame(&payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(frame: Frame) {
        let mut wire = Vec::new();
        write_frame(&mut wire, &frame).unwrap();
        let decoded = read_frame(&mut wire.as_slice()).unwrap();
        assert_eq!(decoded, frame);
    }

    #[test]
    fn every_frame_kind_round_trips() {
        roundtrip(Frame::ClientHello { version: PROTOCOL_VERSION });
        roundtrip(Frame::ServerHello {
            version: PROTOCOL_VERSION,
            capabilities: Capabilities {
                max_qubits: Some(5),
                shots_per_circuit: None,
                supports_mid_circuit: false,
                label: "exact(5q)".into(),
            },
        });
        roundtrip(Frame::SubmitBatch {
            batch: 7,
            circuits: vec!["OPENQASM 2.0;\nqreg q[1];\nh q[0];\n".into(), String::new()],
            shots: Some(vec![100, 0]),
            trace: None,
        });
        roundtrip(Frame::SubmitBatch { batch: 8, circuits: vec![], shots: None, trace: None });
        roundtrip(Frame::SubmitBatch {
            batch: 9,
            circuits: vec!["OPENQASM 2.0;\nqreg q[1];\n".into()],
            shots: None,
            trace: Some(TraceContext { trace_id: u64::MAX, parent_span: 42 }),
        });
        roundtrip(Frame::CircuitResult {
            batch: 7,
            index: 1,
            distribution: vec![0.5, 0.25, 0.25, -0.0],
        });
        roundtrip(Frame::CircuitFailed {
            batch: 7,
            index: 0,
            kind: WireErrorKind::Backend,
            reason: "too wide".into(),
        });
        roundtrip(Frame::CircuitFailed {
            batch: 7,
            index: 1,
            kind: WireErrorKind::Protocol,
            reason: "qasm parse error".into(),
        });
        roundtrip(Frame::BatchDone { batch: 7, executed: 1, telemetry: None });
        roundtrip(Frame::BatchDone {
            batch: 7,
            executed: 2,
            telemetry: Some(BatchTelemetry {
                spans: vec![
                    qrcc_core::obs::RemoteSpan {
                        id: 1,
                        parent: 0,
                        name: "server.batch".into(),
                        start_unix_us: 1_700_000_000_000_000,
                        duration_us: 1234,
                    },
                    qrcc_core::obs::RemoteSpan {
                        id: 2,
                        parent: 1,
                        name: "server.execute".into(),
                        start_unix_us: 1_700_000_000_000_100,
                        duration_us: 1000,
                    },
                ],
                counters: vec![("server.circuits_ok".into(), 2)],
                histograms: vec![("server.batch_latency_us".into(), {
                    let mut h = qrcc_core::obs::Histogram::new();
                    h.record(1234);
                    h.record(u64::MAX); // saturation bucket survives the wire
                    h
                })],
            }),
        });
        roundtrip(Frame::GetMetrics);
        roundtrip(Frame::MetricsReply { report: MetricsReport::default() });
        roundtrip(Frame::MetricsReply {
            report: MetricsReport {
                prometheus: "# TYPE server_batches counter\nserver_batches 3\n".into(),
                windowed: vec![("server.window_batch_latency_us".into(), {
                    let mut h = qrcc_core::obs::Histogram::new();
                    h.record(250);
                    h.record(99_000);
                    h
                })],
                counters: vec![("server.batches".into(), 3)],
                gauges: vec![
                    ("server.queue_depth".into(), 2.0),
                    ("server.window_req_rate".into(), 0.125),
                ],
            },
        });
        roundtrip(Frame::GetHealth);
        for state in [HealthState::Accepting, HealthState::Draining, HealthState::Overloaded] {
            roundtrip(Frame::HealthReply {
                state,
                queue_depth: 4,
                queue_high_water: 9,
                connections: 2,
            });
        }
        roundtrip(Frame::Ping { nonce: u64::MAX });
        roundtrip(Frame::Pong { nonce: 0 });
        roundtrip(Frame::Error {
            kind: WireErrorKind::VersionMismatch,
            message: "speak version 1".into(),
        });
    }

    #[test]
    fn distributions_survive_bit_exactly() {
        let distribution = vec![1.0 / 3.0, f64::MIN_POSITIVE, 1e-300, 0.12345678901234567];
        let frame = Frame::CircuitResult { batch: 1, index: 0, distribution: distribution.clone() };
        let mut wire = Vec::new();
        write_frame(&mut wire, &frame).unwrap();
        match read_frame(&mut wire.as_slice()).unwrap() {
            Frame::CircuitResult { distribution: decoded, .. } => {
                for (a, b) in distribution.iter().zip(&decoded) {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
            }
            other => panic!("wrong frame {other:?}"),
        }
    }

    #[test]
    fn truncated_and_garbled_frames_are_malformed() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &Frame::Ping { nonce: 3 }).unwrap();
        // truncate mid-payload: an i/o error (the reader cannot tell a slow
        // peer from a dead one; timeouts make the call)
        let cut = wire.len() - 2;
        assert!(matches!(read_frame(&mut wire[..cut].as_ref()), Err(ProtoError::Io(_))));
        // declare 2 extra bytes the payload doesn't use: trailing garbage
        let mut padded = wire.clone();
        let len = u32::from_be_bytes(padded[..4].try_into().unwrap()) + 2;
        padded[..4].copy_from_slice(&len.to_be_bytes());
        padded.extend_from_slice(&[0, 0]);
        assert!(matches!(read_frame(&mut padded.as_slice()), Err(ProtoError::Malformed { .. })));
        // unknown tag
        let mut unknown = wire;
        unknown[4] = 200;
        assert!(matches!(read_frame(&mut unknown.as_slice()), Err(ProtoError::Malformed { .. })));
    }

    #[test]
    fn oversized_frames_are_refused_at_write_time() {
        // a 2^23-entry distribution encodes past the 64 MiB cap: the writer
        // must error out instead of sending a frame the peer will reject
        let frame = Frame::CircuitResult { batch: 1, index: 0, distribution: vec![0.0; 1 << 23] };
        let mut wire = Vec::new();
        let err = write_frame(&mut wire, &frame).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(wire.is_empty(), "nothing may reach the stream");
    }

    #[test]
    fn oversized_frames_are_rejected_before_allocation() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(MAX_FRAME_LEN + 1).to_be_bytes());
        wire.push(TAG_PING);
        assert!(matches!(
            read_frame(&mut wire.as_slice()),
            Err(ProtoError::FrameTooLarge { len }) if len == MAX_FRAME_LEN + 1
        ));
        let mut empty = Vec::new();
        empty.extend_from_slice(&0u32.to_be_bytes());
        assert!(matches!(read_frame(&mut empty.as_slice()), Err(ProtoError::Malformed { .. })));
    }

    #[test]
    fn io_errors_map_to_backend_unavailable_and_violations_to_transport() {
        use qrcc_core::CoreError;
        let io = ProtoError::Io(io::Error::new(io::ErrorKind::ConnectionReset, "gone"));
        assert!(matches!(io.into_core("srv"), CoreError::BackendUnavailable { .. }));
        let garbled = ProtoError::malformed("unknown frame tag 200");
        assert!(matches!(garbled.into_core("srv"), CoreError::Transport { .. }));
        let oversized = ProtoError::FrameTooLarge { len: u32::MAX };
        assert!(matches!(oversized.into_core("srv"), CoreError::Transport { .. }));
    }
}
