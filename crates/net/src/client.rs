//! `RemoteBackend`: an [`ExecutionBackend`] whose device lives across a TCP
//! connection.
//!
//! The client is the other half of the dispatch seam: it speaks the
//! [`proto`](crate::proto) frame protocol to a
//! [`QrccServer`](crate::QrccServer), answers the scheduler's capability
//! queries from the handshake's [`Capabilities`] (no network round trip),
//! and maps failures onto the dispatch layer's taxonomy — I/O errors,
//! disconnects and timeouts become [`CoreError::BackendUnavailable`] (the
//! transient class the dispatcher retries on another backend with this one
//! excluded), protocol violations become [`CoreError::Transport`].
//!
//! Connections live in a small **reconnecting pool**: a batch checks a
//! connection out, and returns it only when the batch completed cleanly. A
//! connection that saw any failure is dropped on the floor, so the next
//! batch dials fresh — the pool never hands out a stream in an unknown
//! protocol state. Crucially the client never *resubmits* a failed batch
//! itself: retry policy (and its exactly-once shot accounting) belongs to
//! the dispatcher.

use crate::proto::{
    self, Capabilities, Frame, HealthReport, MetricsReport, ProtoError, WireErrorKind,
    PROTOCOL_VERSION,
};
use parking_lot::Mutex;
use qrcc_circuit::{qasm, Circuit};
use qrcc_core::execute::ExecutionBackend;
use qrcc_core::CoreError;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Default cap on every socket operation (connect, read, write). A stalled
/// server therefore surfaces as [`CoreError::BackendUnavailable`] instead of
/// hanging a dispatch worker forever.
pub const DEFAULT_IO_TIMEOUT: Duration = Duration::from_secs(30);

/// Default cap on the wait for a submitted batch's **first and subsequent
/// reply frames**. The server runs a batch as one backend call (preserving
/// its internal parallelism and deterministic sampling streams) and only
/// then streams the replies, so this — not [`DEFAULT_IO_TIMEOUT`] — bounds
/// how long a legitimate batch may compute remotely.
pub const DEFAULT_REPLY_TIMEOUT: Duration = Duration::from_secs(600);

/// An [`ExecutionBackend`] that submits its batches to a remote
/// [`QrccServer`](crate::QrccServer) over TCP.
///
/// Drops straight into a
/// [`DeviceRegistry`](qrcc_core::schedule::DeviceRegistry); the PR 4
/// dispatcher's retry-with-exclusion and bounded in-flight windows then
/// rescue real network faults with no transport-specific code.
pub struct RemoteBackend {
    peer: SocketAddr,
    capabilities: Capabilities,
    io_timeout: Duration,
    reply_timeout: Duration,
    pool: Mutex<Vec<TcpStream>>,
    executions: AtomicU64,
    dials: AtomicU64,
    next_batch: AtomicU64,
}

impl RemoteBackend {
    /// Connects to a server with the [`DEFAULT_IO_TIMEOUT`], performing the
    /// handshake and caching the worker's [`Capabilities`].
    ///
    /// Only the **first** resolved address is used (and re-used by every
    /// pool reconnect); pass a concrete `SocketAddr` when a hostname
    /// resolves to multiple address families.
    ///
    /// # Errors
    ///
    /// [`CoreError::BackendUnavailable`] when the server cannot be reached,
    /// [`CoreError::Transport`] when it speaks the protocol wrong (including
    /// a version mismatch).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, CoreError> {
        Self::connect_with_timeouts(addr, DEFAULT_IO_TIMEOUT, DEFAULT_REPLY_TIMEOUT)
    }

    /// [`RemoteBackend::connect`] with one explicit timeout governing both
    /// per-operation I/O **and** batch-reply waits — handy for tests that
    /// want faults to surface fast.
    ///
    /// # Errors
    ///
    /// See [`RemoteBackend::connect`].
    pub fn connect_with_timeout(
        addr: impl ToSocketAddrs,
        io_timeout: Duration,
    ) -> Result<Self, CoreError> {
        Self::connect_with_timeouts(addr, io_timeout, io_timeout)
    }

    /// [`RemoteBackend::connect`] with separate caps for socket operations
    /// (connect/handshake/ping/write) and for awaiting a submitted batch's
    /// reply frames (which includes the remote backend's compute time).
    ///
    /// # Errors
    ///
    /// See [`RemoteBackend::connect`].
    pub fn connect_with_timeouts(
        addr: impl ToSocketAddrs,
        io_timeout: Duration,
        reply_timeout: Duration,
    ) -> Result<Self, CoreError> {
        let peer = addr
            .to_socket_addrs()
            .map_err(|e| unavailable("remote", format!("cannot resolve address: {e}")))?
            .next()
            .ok_or_else(|| unavailable("remote", "address resolved to nothing".to_string()))?;
        let backend = RemoteBackend {
            peer,
            capabilities: Capabilities {
                max_qubits: None,
                shots_per_circuit: None,
                supports_mid_circuit: false,
                label: String::new(),
            },
            io_timeout,
            reply_timeout,
            pool: Mutex::new(Vec::new()),
            executions: AtomicU64::new(0),
            dials: AtomicU64::new(0),
            next_batch: AtomicU64::new(0),
        };
        let (stream, capabilities) = backend.dial()?;
        backend.pool.lock().push(stream);
        Ok(RemoteBackend { capabilities, ..backend })
    }

    /// The worker's capabilities, as exchanged in the handshake.
    pub fn capabilities(&self) -> &Capabilities {
        &self.capabilities
    }

    /// The server address this backend submits to.
    pub fn peer_addr(&self) -> SocketAddr {
        self.peer
    }

    /// Connections dialled so far (1 for the handshake; each one beyond
    /// that replaced a connection lost to a fault).
    pub fn connections_dialled(&self) -> u64 {
        self.dials.load(Ordering::Relaxed)
    }

    /// Heartbeat: round-trips a `Ping` and returns its latency.
    ///
    /// # Errors
    ///
    /// [`CoreError::BackendUnavailable`] when the server is unreachable or
    /// stalled, [`CoreError::Transport`] when it answers wrongly.
    pub fn ping(&self) -> Result<Duration, CoreError> {
        let mut stream = self.checkout()?;
        let rtt = self.roundtrip_ping(&mut stream)?;
        self.checkin(stream);
        Ok(rtt)
    }

    /// One `Ping`/`Pong` round trip on an already-checked-out connection.
    /// Every successful round trip records `net.ping_rtt_us` (cold path,
    /// always on): the fleet's health probes and the pool's checkout log
    /// line read it even when span tracing is off.
    fn roundtrip_ping(&self, stream: &mut TcpStream) -> Result<Duration, CoreError> {
        let nonce = 0x9e37_79b9 ^ self.next_batch.fetch_add(1, Ordering::Relaxed);
        let started = Instant::now();
        proto::write_frame(stream, &Frame::Ping { nonce })
            .map_err(|e| ProtoError::Io(e).into_core(&self.label()))?;
        match proto::read_frame(&mut FrameDeadline::new(stream, self.io_timeout)) {
            Ok(Frame::Pong { nonce: echoed }) if echoed == nonce => {
                let rtt = started.elapsed();
                qrcc_core::obs::metrics().record_duration("net.ping_rtt_us", rtt);
                Ok(rtt)
            }
            Ok(other) => Err(CoreError::Transport {
                detail: format!("expected Pong, server sent {}", frame_name(&other)),
            }),
            Err(e) => Err(e.into_core(&self.label())),
        }
    }

    /// Scrapes the server's live metrics ([`Frame::GetMetrics`], v3+):
    /// Prometheus text plus the windowed snapshot, without a batch
    /// round-trip.
    ///
    /// # Errors
    ///
    /// [`CoreError::BackendUnavailable`] when the server is unreachable,
    /// [`CoreError::Transport`] when it answers wrongly.
    pub fn get_metrics(&self) -> Result<MetricsReport, CoreError> {
        let mut stream = self.checkout()?;
        proto::write_frame(&mut stream, &Frame::GetMetrics)
            .map_err(|e| ProtoError::Io(e).into_core(&self.label()))?;
        match proto::read_frame(&mut FrameDeadline::new(&mut stream, self.io_timeout)) {
            Ok(Frame::MetricsReply { report }) => {
                self.checkin(stream);
                Ok(report)
            }
            Ok(other) => Err(CoreError::Transport {
                detail: format!("expected MetricsReply, server sent {}", frame_name(&other)),
            }),
            Err(e) => Err(e.into_core(&self.label())),
        }
    }

    /// Asks for the server's readiness verdict ([`Frame::GetHealth`], v3+):
    /// accepting / draining / overloaded plus live queue occupancy.
    ///
    /// # Errors
    ///
    /// [`CoreError::BackendUnavailable`] when the server is unreachable,
    /// [`CoreError::Transport`] when it answers wrongly.
    pub fn get_health(&self) -> Result<HealthReport, CoreError> {
        let mut stream = self.checkout()?;
        proto::write_frame(&mut stream, &Frame::GetHealth)
            .map_err(|e| ProtoError::Io(e).into_core(&self.label()))?;
        match proto::read_frame(&mut FrameDeadline::new(&mut stream, self.io_timeout)) {
            Ok(Frame::HealthReply { state, queue_depth, queue_high_water, connections }) => {
                self.checkin(stream);
                Ok(HealthReport { state, queue_depth, queue_high_water, connections })
            }
            Ok(other) => Err(CoreError::Transport {
                detail: format!("expected HealthReply, server sent {}", frame_name(&other)),
            }),
            Err(e) => Err(e.into_core(&self.label())),
        }
    }

    /// Dials and handshakes one fresh connection.
    fn dial(&self) -> Result<(TcpStream, Capabilities), CoreError> {
        self.dials.fetch_add(1, Ordering::Relaxed);
        let label = if self.capabilities.label.is_empty() {
            format!("remote@{}", self.peer)
        } else {
            self.label()
        };
        let stream = TcpStream::connect_timeout(&self.peer, self.io_timeout)
            .map_err(|e| unavailable(&label, format!("connect failed: {e}")))?;
        let _ = stream.set_nodelay(true);
        stream
            .set_read_timeout(Some(self.io_timeout))
            .and_then(|()| stream.set_write_timeout(Some(self.io_timeout)))
            .map_err(|e| unavailable(&label, format!("cannot configure socket: {e}")))?;
        let mut stream = stream;
        proto::write_frame(&mut stream, &Frame::ClientHello { version: PROTOCOL_VERSION })
            .map_err(|e| ProtoError::Io(e).into_core(&label))?;
        match proto::read_frame(&mut FrameDeadline::new(&mut stream, self.io_timeout)) {
            Ok(Frame::ServerHello { version, capabilities }) if version == PROTOCOL_VERSION => {
                Ok((stream, capabilities))
            }
            Ok(Frame::ServerHello { version, .. }) => Err(CoreError::Transport {
                detail: format!(
                    "server answered with protocol version {version}, expected {PROTOCOL_VERSION}"
                ),
            }),
            Ok(Frame::Error { kind, message }) => Err(match kind {
                WireErrorKind::Backend => unavailable(&label, message),
                _ => CoreError::Transport { detail: message },
            }),
            Ok(other) => Err(CoreError::Transport {
                detail: format!("expected ServerHello, server sent {}", frame_name(&other)),
            }),
            Err(e) => Err(e.into_core(&label)),
        }
    }

    /// Takes an idle pooled connection or dials a new one. Pooled
    /// connections are liveness-probed first: the server reaps connections
    /// that idle past its deadline, and a reaped one must not cost the next
    /// batch a spurious failure.
    fn checkout(&self) -> Result<TcpStream, CoreError> {
        while let Some(mut stream) = self.pool.lock().pop() {
            if !connection_is_live(&stream) {
                continue;
            }
            // Reuse checkout: one Ping round trip. This upgrades the cheap
            // peek probe to an end-to-end liveness check *and* keeps
            // steady-state traffic feeding `net.ping_rtt_us` — without it
            // only explicit ping() calls record RTT, so the quantiles would
            // reflect idle health probes instead of the connections batches
            // actually ride. A connection that fails the ping is dropped
            // and the next pooled one (or a fresh dial) is tried.
            if self.roundtrip_ping(&mut stream).is_ok() {
                return Ok(stream);
            }
        }
        let (stream, capabilities) = self.dial()?;
        // A worker restart may change capabilities; the scheduler routed
        // against the handshake's answers, so a narrowed worker must not be
        // silently accepted.
        if capabilities != self.capabilities {
            return Err(CoreError::Transport {
                detail: format!(
                    "server capabilities changed across reconnect (was {:?}, now {:?})",
                    self.capabilities, capabilities
                ),
            });
        }
        // a fresh dial mid-run usually means the server reaped or dropped
        // the pooled connection; when tracing is on, surface it with the
        // link's observed ping RTT so slow checkouts are explainable
        if qrcc_core::obs::tracer().enabled() {
            let rtt = qrcc_core::obs::metrics()
                .histogram("net.ping_rtt_us")
                .and_then(|h| Some((h.p50()?, h.count())));
            match rtt {
                Some((p50, pings)) => eprintln!(
                    "[qrcc-net] checkout dialled fresh connection to {} (ping RTT p50 {p50}us over {pings} ping(s))",
                    self.peer
                ),
                None => eprintln!(
                    "[qrcc-net] checkout dialled fresh connection to {} (no ping RTT recorded yet)",
                    self.peer
                ),
            }
        }
        Ok(stream)
    }

    /// Returns a connection that finished its batch cleanly to the pool,
    /// restoring the ordinary per-operation read timeout.
    fn checkin(&self, stream: TcpStream) {
        if stream.set_read_timeout(Some(self.io_timeout)).is_err() {
            return; // an unconfigurable socket is not worth pooling
        }
        self.pool.lock().push(stream);
    }

    /// Submits one batch and reads the streamed per-circuit replies.
    ///
    /// Whole-connection failures (dial, submit, a dead reply stream) fail
    /// every circuit of the batch with the same error; per-circuit
    /// `CircuitFailed` replies fail only their slot.
    fn submit(
        &self,
        circuits: &[Circuit],
        shots: Option<&[u64]>,
    ) -> Vec<Result<Vec<f64>, CoreError>> {
        if circuits.is_empty() {
            return Vec::new();
        }
        let mut stream = match self.checkout() {
            Ok(stream) => stream,
            Err(error) => return vec![error; circuits.len()].into_iter().map(Err).collect(),
        };
        // opens under whatever span is live on this thread (a dispatch
        // worker's `job.execute`), so remote submissions nest into the
        // pipeline tree; the server's span subtree grafts under it when the
        // reply's telemetry is imported. Self-gating: a no-op when tracing
        // is off, and `span.id()` is then 0 so no context rides the wire.
        let tracer = qrcc_core::obs::tracer();
        let span = tracer.span("net.submit");
        let batch = self.next_batch.fetch_add(1, Ordering::Relaxed);
        let trace = span
            .is_recording()
            .then(|| proto::TraceContext { trace_id: batch, parent_span: span.id() });
        let frame = Frame::SubmitBatch {
            batch,
            circuits: circuits.iter().map(qasm::to_qasm).collect(),
            shots: shots.map(<[u64]>::to_vec),
            trace,
        };
        if let Err(e) = proto::write_frame(&mut stream, &frame) {
            // an oversized frame is refused before any bytes move: that is a
            // deterministic serialisation failure, not a transient fault the
            // dispatcher should replay on other backends
            let error = if e.kind() == std::io::ErrorKind::InvalidData {
                CoreError::Transport { detail: format!("cannot submit batch: {e}") }
            } else {
                ProtoError::Io(e).into_core(&self.label())
            };
            return circuits.iter().map(|_| Err(error.clone())).collect();
        }
        // the first reply arrives only after the worker's whole batch call
        // returns, so the wait is bounded by the (long) reply timeout, not
        // the per-operation I/O timeout
        let _ = stream.set_read_timeout(Some(self.reply_timeout));
        match self.read_batch_replies(&mut stream, batch, circuits, span.id()) {
            Ok(outcomes) => {
                let ok = outcomes.iter().filter(|o| o.is_ok()).count() as u64;
                self.executions.fetch_add(ok, Ordering::Relaxed);
                self.checkin(stream);
                outcomes
            }
            // the connection is in an unknown state: drop it, fail the batch
            Err(error) => circuits.iter().map(|_| Err(error.clone())).collect(),
        }
    }

    /// Collects exactly one reply per submitted circuit plus the closing
    /// `BatchDone`. When the `BatchDone` carries telemetry (the submission
    /// included a [`TraceContext`](proto::TraceContext)), the server's span
    /// subtree is grafted under `submit_span` and its metric deltas merge
    /// into the process-global registry.
    fn read_batch_replies(
        &self,
        stream: &mut TcpStream,
        batch: u64,
        circuits: &[Circuit],
        submit_span: u64,
    ) -> Result<Vec<Result<Vec<f64>, CoreError>>, CoreError> {
        let label = self.label();
        let expected = circuits.len();
        let mut slots: Vec<Option<Result<Vec<f64>, CoreError>>> = vec![None; expected];
        loop {
            match proto::read_frame(&mut FrameDeadline::new(&mut *stream, self.io_timeout))
                .map_err(|e| e.into_core(&label))?
            {
                Frame::CircuitResult { batch: b, index, distribution } => {
                    // a distribution must cover exactly the circuit's
                    // classical register — a wrong length would silently
                    // corrupt reconstruction downstream
                    if let Some(circuit) = circuits.get(index as usize) {
                        let want = 1usize.checked_shl(circuit.num_clbits() as u32);
                        if want != Some(distribution.len()) {
                            return Err(CoreError::Transport {
                                detail: format!(
                                    "distribution of {} entries for circuit {index} with {} classical bit(s)",
                                    distribution.len(),
                                    circuit.num_clbits()
                                ),
                            });
                        }
                    }
                    self.fill_slot(&mut slots, b, batch, index, Ok(distribution))?;
                }
                Frame::CircuitFailed { batch: b, index, kind, reason } => {
                    // preserve the server's failure class: device faults are
                    // transient (retry elsewhere), deterministic failures
                    // (e.g. the circuit did not parse) are not
                    let error = match kind {
                        WireErrorKind::Protocol | WireErrorKind::VersionMismatch => {
                            CoreError::Transport {
                                detail: format!("remote execution failed: {reason}"),
                            }
                        }
                        WireErrorKind::Backend => {
                            unavailable(&label, format!("remote execution failed: {reason}"))
                        }
                    };
                    self.fill_slot(&mut slots, b, batch, index, Err(error))?;
                }
                Frame::BatchDone { batch: b, executed, telemetry } => {
                    if b != batch {
                        return Err(CoreError::Transport {
                            detail: format!("BatchDone for batch {b} while awaiting {batch}"),
                        });
                    }
                    if let Some(telemetry) = telemetry {
                        let tracer = qrcc_core::obs::tracer();
                        if tracer.enabled() {
                            tracer.import(&telemetry.spans, submit_span);
                            let metrics = qrcc_core::obs::metrics();
                            for (name, delta) in &telemetry.counters {
                                metrics.counter_add(name, *delta);
                            }
                            for (name, histogram) in &telemetry.histograms {
                                metrics.merge_histogram(name, histogram);
                            }
                        }
                    }
                    let filled = slots.iter().filter(|s| s.is_some()).count();
                    if filled != expected {
                        return Err(CoreError::Transport {
                            detail: format!(
                                "server closed batch {batch} after {filled} of {expected} replies"
                            ),
                        });
                    }
                    let ok = slots.iter().flatten().filter(|o| o.is_ok()).count();
                    if ok as u32 != executed {
                        return Err(CoreError::Transport {
                            detail: format!(
                                "server counted {executed} executed circuits, client saw {ok}"
                            ),
                        });
                    }
                    return Ok(slots.into_iter().map(|s| s.expect("all slots filled")).collect());
                }
                Frame::Error { kind, message } => {
                    return Err(match kind {
                        WireErrorKind::Backend => unavailable(&label, message),
                        _ => CoreError::Transport { detail: message },
                    });
                }
                other => {
                    return Err(CoreError::Transport {
                        detail: format!(
                            "unexpected {} frame inside batch {batch}",
                            frame_name(&other)
                        ),
                    });
                }
            }
        }
    }

    fn fill_slot(
        &self,
        slots: &mut [Option<Result<Vec<f64>, CoreError>>],
        got_batch: u64,
        batch: u64,
        index: u32,
        outcome: Result<Vec<f64>, CoreError>,
    ) -> Result<(), CoreError> {
        if got_batch != batch {
            return Err(CoreError::Transport {
                detail: format!("reply for batch {got_batch} while awaiting {batch}"),
            });
        }
        let slot = slots.get_mut(index as usize).ok_or_else(|| CoreError::Transport {
            detail: format!("reply for out-of-range circuit index {index}"),
        })?;
        if slot.is_some() {
            return Err(CoreError::Transport {
                detail: format!("duplicate reply for circuit index {index}"),
            });
        }
        *slot = Some(outcome);
        Ok(())
    }
}

fn unavailable(backend: &str, reason: String) -> CoreError {
    CoreError::BackendUnavailable { backend: backend.to_string(), reason }
}

/// Bounds the gap between received bytes once a frame has started: every
/// read must make progress within `stall_cap` of the previous one (the
/// server's `FRAME_STALL` enforces the same bound on its side). A wedged
/// server that stops sending mid-frame fails fast even while the socket's
/// own timeout is set to the much longer reply timeout; a slow but steady
/// large transfer keeps resetting the clock and completes.
struct FrameDeadline<'a> {
    stream: &'a mut TcpStream,
    stall_cap: Duration,
    deadline: Option<Instant>,
}

impl<'a> FrameDeadline<'a> {
    fn new(stream: &'a mut TcpStream, stall_cap: Duration) -> Self {
        FrameDeadline { stream, stall_cap, deadline: None }
    }
}

impl std::io::Read for FrameDeadline<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if let Some(deadline) = self.deadline {
            if Instant::now() > deadline {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    "peer stalled mid-frame",
                ));
            }
        }
        let n = self.stream.read(buf)?;
        if n > 0 {
            if self.deadline.is_none() {
                // one blocked read could otherwise wait out the (long)
                // pre-frame socket timeout before the deadline is even
                // consulted: once a frame has started, cap every further
                // wait at the stall budget
                let _ = self.stream.set_read_timeout(Some(self.stall_cap));
            }
            self.deadline = Some(Instant::now() + self.stall_cap);
        }
        Ok(n)
    }
}

/// Cheap liveness probe for an idle pooled connection: a healthy one has no
/// pending bytes (`WouldBlock`); EOF, an error, or unsolicited data all mean
/// the stream cannot safely carry another batch.
fn connection_is_live(stream: &TcpStream) -> bool {
    if stream.set_nonblocking(true).is_err() {
        return false;
    }
    let mut probe = [0u8; 1];
    let live = matches!(
        stream.peek(&mut probe),
        Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock
    );
    live && stream.set_nonblocking(false).is_ok()
}

fn frame_name(frame: &Frame) -> &'static str {
    match frame {
        Frame::ClientHello { .. } => "ClientHello",
        Frame::ServerHello { .. } => "ServerHello",
        Frame::SubmitBatch { .. } => "SubmitBatch",
        Frame::CircuitResult { .. } => "CircuitResult",
        Frame::CircuitFailed { .. } => "CircuitFailed",
        Frame::BatchDone { .. } => "BatchDone",
        Frame::GetMetrics => "GetMetrics",
        Frame::MetricsReply { .. } => "MetricsReply",
        Frame::GetHealth => "GetHealth",
        Frame::HealthReply { .. } => "HealthReply",
        Frame::Ping { .. } => "Ping",
        Frame::Pong { .. } => "Pong",
        Frame::Error { .. } => "Error",
    }
}

impl ExecutionBackend for RemoteBackend {
    fn run_one(&self, circuit: &Circuit) -> Result<Vec<f64>, CoreError> {
        self.submit(std::slice::from_ref(circuit), None)
            .pop()
            .expect("one outcome per submitted circuit")
    }

    fn run_batch(&self, circuits: &[Circuit]) -> Vec<Result<Vec<f64>, CoreError>> {
        self.submit(circuits, None)
    }

    fn run_batch_with_shots(
        &self,
        circuits: &[Circuit],
        shots: &[u64],
    ) -> Vec<Result<Vec<f64>, CoreError>> {
        debug_assert_eq!(circuits.len(), shots.len(), "one shot count per circuit");
        self.submit(circuits, Some(shots))
    }

    fn max_qubits(&self) -> Option<usize> {
        self.capabilities.max_qubits.map(|q| q as usize)
    }

    fn can_run(&self, circuit: &Circuit) -> bool {
        // mirror the worker's handshake-probed refinements, so the router
        // never places a circuit the worker would deterministically reject
        let width_ok = self.max_qubits().is_none_or(|max| circuit.num_qubits() <= max);
        width_ok
            && (self.capabilities.supports_mid_circuit
                || !qrcc_sim::device::needs_mid_circuit(circuit))
    }

    fn shots_per_circuit(&self) -> Option<u64> {
        self.capabilities.shots_per_circuit
    }

    fn label(&self) -> String {
        format!("remote({} @ {})", self.capabilities.label, self.peer)
    }

    fn executions(&self) -> u64 {
        self.executions.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for RemoteBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteBackend")
            .field("peer", &self.peer)
            .field("capabilities", &self.capabilities)
            .field("io_timeout", &self.io_timeout)
            .field("reply_timeout", &self.reply_timeout)
            .field("pooled", &self.pool.lock().len())
            .field("dialled", &self.dials.load(Ordering::Relaxed))
            .finish()
    }
}
