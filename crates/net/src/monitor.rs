//! Client-side fleet health monitoring: poll every worker's live scrape
//! endpoint ([`Frame::GetMetrics`](crate::proto::Frame::GetMetrics) /
//! [`Frame::GetHealth`](crate::proto::Frame::GetHealth)) and merge the
//! windowed per-worker views into one fleet-wide snapshot.
//!
//! The merge is a **pure function** over [`MetricsReport`]s
//! ([`merge_reports`]) so its algebra — counters add, extensive gauges add,
//! histograms merge exactly — is testable without a socket in sight. The
//! polling half ([`FleetMonitor`]) is a thin loop around it: check out a
//! pooled connection per worker, fetch health + metrics, score the
//! configured [`SloSpec`](qrcc_core::obs::SloSpec) per worker and once more
//! against the fleet-merged window, and render everything through
//! [`QrccReport`] sections.

use std::time::{Duration, Instant};

use qrcc_core::execute::ExecutionBackend;
use qrcc_core::obs::{
    Histogram, MetricsSnapshot, MonitorPolicy, QrccReport, SloEvaluation, SloStatus,
};

use crate::client::RemoteBackend;
use crate::proto::{HealthReport, HealthState, MetricsReport};

/// Name of the windowed batch-latency histogram every `QrccServer` ships in
/// its [`MetricsReport::windowed`] list.
pub const WINDOW_LATENCY_METRIC: &str = "server.window_batch_latency_us";

/// Name of the windowed request-rate gauge (requests per second over the
/// server's metrics window).
pub const WINDOW_REQ_RATE_GAUGE: &str = "server.window_req_rate";

/// Name of the windowed error-rate gauge (failed batches per second over
/// the server's metrics window).
pub const WINDOW_ERROR_RATE_GAUGE: &str = "server.window_error_rate";

/// One worker's [`MetricsReport`] as a [`MetricsSnapshot`]: windowed
/// histograms become histograms, counters counters, gauges gauges. This is
/// the per-worker section a [`FleetView`] report renders.
pub fn report_snapshot(report: &MetricsReport) -> MetricsSnapshot {
    let mut snap = MetricsSnapshot::default();
    for (name, value) in &report.counters {
        snap = snap.with_counter(name, *value);
    }
    for (name, value) in &report.gauges {
        snap = snap.with_gauge(name, *value);
    }
    for (name, histogram) in &report.windowed {
        snap = snap.with_histogram(name, histogram.clone());
    }
    snap
}

/// The fleet merge: fold per-worker [`MetricsReport`]s into one snapshot.
///
/// Counters add (saturating), histograms merge via the exactly-associative
/// [`Histogram::merge`], and gauges **add** — every gauge a `QrccServer`
/// exposes (queue depths, open connections, windowed request/error rates)
/// is an extensive quantity, so the fleet-wide value is the sum, not the
/// last writer. Pure and order-insensitive: merging in any grouping yields
/// the same snapshot (the property test relies on this).
pub fn merge_reports<'a>(reports: impl IntoIterator<Item = &'a MetricsReport>) -> MetricsSnapshot {
    use std::collections::BTreeMap;
    let mut counters: BTreeMap<String, u64> = BTreeMap::new();
    let mut gauges: BTreeMap<String, f64> = BTreeMap::new();
    let mut histograms: BTreeMap<String, Histogram> = BTreeMap::new();
    for report in reports {
        for (name, value) in &report.counters {
            let slot = counters.entry(name.clone()).or_insert(0);
            *slot = slot.saturating_add(*value);
        }
        for (name, value) in &report.gauges {
            *gauges.entry(name.clone()).or_insert(0.0) += *value;
        }
        for (name, histogram) in &report.windowed {
            histograms.entry(name.clone()).or_default().merge(histogram);
        }
    }
    MetricsSnapshot {
        counters: counters.into_iter().collect(),
        gauges: gauges.into_iter().collect(),
        histograms: histograms.into_iter().collect(),
    }
}

/// Scores a [`MonitorPolicy`]'s SLO against one worker's windowed view.
///
/// Requests in the window come from the windowed latency histogram's count
/// (every batch records exactly one latency sample); errors are
/// reconstructed from the windowed error-rate gauge times the policy
/// window, so the policy window should match the servers'
/// [`with_metrics_window`](crate::server::QrccServer::with_metrics_window)
/// configuration. Returns `None` when the policy carries no SLO.
pub fn evaluate_report(policy: &MonitorPolicy, report: &MetricsReport) -> Option<SloEvaluation> {
    let slo = policy.slo.as_ref()?;
    let latency = report
        .windowed
        .iter()
        .find(|(name, _)| name == WINDOW_LATENCY_METRIC)
        .map(|(_, histogram)| histogram.clone())
        .unwrap_or_default();
    let requests = latency.count();
    let errors = windowed_errors(policy, &report.gauges);
    Some(slo.evaluate(&latency, requests, errors))
}

fn windowed_errors(policy: &MonitorPolicy, gauges: &[(String, f64)]) -> u64 {
    let window_s = policy.window_us as f64 / 1e6;
    gauges
        .iter()
        .find(|(name, _)| name == WINDOW_ERROR_RATE_GAUGE)
        .map(|(_, rate)| (rate * window_s).round().max(0.0) as u64)
        .unwrap_or(0)
}

/// One worker's slice of a [`FleetView`] poll.
#[derive(Debug, Clone)]
pub struct WorkerView {
    /// The worker's label (`"<capabilities label> @ <addr>"`).
    pub label: String,
    /// Readiness as reported by `GetHealth`; `None` if the poll failed.
    pub health: Option<HealthReport>,
    /// The live scrape as reported by `GetMetrics`; `None` if it failed.
    pub report: Option<MetricsReport>,
    /// The policy SLO scored against this worker's own window.
    pub slo: Option<SloEvaluation>,
    /// Why the poll failed, when it did.
    pub error: Option<String>,
}

impl WorkerView {
    /// Whether both health and metrics polls succeeded.
    pub fn reachable(&self) -> bool {
        self.health.is_some() && self.report.is_some()
    }
}

/// One poll of the whole fleet: per-worker views plus the merged window.
#[derive(Debug, Clone)]
pub struct FleetView {
    /// Per-worker views, in registration order.
    pub workers: Vec<WorkerView>,
    /// All reachable workers' reports folded through [`merge_reports`].
    pub merged: MetricsSnapshot,
    /// The policy SLO scored against the fleet-merged window.
    pub slo: Option<SloEvaluation>,
    /// How many registered workers failed to answer this poll.
    pub unreachable: usize,
}

impl FleetView {
    /// The fleet-merged SLO status ([`SloStatus::Ok`] when no SLO is set).
    pub fn status(&self) -> SloStatus {
        self.slo.as_ref().map(|e| e.status).unwrap_or(SloStatus::Ok)
    }

    /// The worst per-worker SLO status across the fleet.
    pub fn worst_worker_status(&self) -> SloStatus {
        self.workers
            .iter()
            .filter_map(|w| w.slo.as_ref().map(|e| e.status))
            .max()
            .unwrap_or(SloStatus::Ok)
    }

    /// How many reachable workers report the given health state.
    pub fn count_state(&self, state: HealthState) -> usize {
        self.workers.iter().filter(|w| w.health.as_ref().is_some_and(|h| h.state == state)).count()
    }

    /// Total queue depth across all reachable workers.
    pub fn total_queue_depth(&self) -> u64 {
        self.workers.iter().filter_map(|w| w.health.as_ref()).fold(0, |acc, h| acc + h.queue_depth)
    }

    /// Renders the poll as a [`QrccReport`]: the merged window as the main
    /// metrics body plus one named section per worker.
    pub fn report(&self) -> QrccReport {
        let mut report = QrccReport::new().with_metrics(self.merged.clone());
        for worker in &self.workers {
            let mut section = match &worker.report {
                Some(r) => report_snapshot(r),
                None => MetricsSnapshot::default(),
            };
            if let Some(health) = &worker.health {
                section = section.with_gauge("health.state_code", health.state.code() as f64);
            }
            let name = match (&worker.health, &worker.slo) {
                (Some(h), Some(e)) => format!("{} [{}] slo={}", worker.label, h.state, e.status),
                (Some(h), None) => format!("{} [{}]", worker.label, h.state),
                _ => format!("{} [unreachable]", worker.label),
            };
            report = report.with_section(&name, section);
        }
        report
    }
}

/// Polls a fleet of [`RemoteBackend`]s on a [`MonitorPolicy`] cadence and
/// merges their windowed views. Each poll is two extra frames per worker on
/// a pooled connection — no batch round-trip, so monitoring a busy fleet
/// never queues behind its work.
#[derive(Debug)]
pub struct FleetMonitor<'a> {
    policy: MonitorPolicy,
    workers: Vec<&'a RemoteBackend>,
}

impl<'a> FleetMonitor<'a> {
    /// A monitor with no workers yet; add them with
    /// [`add_worker`](FleetMonitor::add_worker) / [`with_worker`](FleetMonitor::with_worker).
    pub fn new(policy: MonitorPolicy) -> Self {
        FleetMonitor { policy, workers: Vec::new() }
    }

    /// Registers a worker (builder form).
    #[must_use]
    pub fn with_worker(mut self, backend: &'a RemoteBackend) -> Self {
        self.workers.push(backend);
        self
    }

    /// Registers a worker.
    pub fn add_worker(&mut self, backend: &'a RemoteBackend) {
        self.workers.push(backend);
    }

    /// The policy this monitor polls and scores under.
    pub fn policy(&self) -> &MonitorPolicy {
        &self.policy
    }

    /// How many workers are registered.
    pub fn len(&self) -> usize {
        self.workers.len()
    }

    /// Whether no workers are registered.
    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }

    /// Polls every worker once and merges the results.
    pub fn poll_once(&self) -> FleetView {
        let mut views = Vec::with_capacity(self.workers.len());
        for backend in &self.workers {
            views.push(self.poll_worker(backend));
        }
        let reports: Vec<&MetricsReport> =
            views.iter().filter_map(|v: &WorkerView| v.report.as_ref()).collect();
        let merged = merge_reports(reports.iter().copied());
        let slo = self.evaluate_merged(&merged);
        let unreachable = views.iter().filter(|v| !v.reachable()).count();
        FleetView { workers: views, merged, slo, unreachable }
    }

    /// Polls on the policy cadence until `duration` elapses, invoking
    /// `on_view` after each poll; returns the final view. At least one poll
    /// always happens, even for a zero duration.
    pub fn watch(&self, duration: Duration, mut on_view: impl FnMut(&FleetView)) -> FleetView {
        let deadline = Instant::now() + duration;
        loop {
            let view = self.poll_once();
            on_view(&view);
            let now = Instant::now();
            if now >= deadline {
                return view;
            }
            std::thread::sleep(self.policy.poll_interval().min(deadline - now));
        }
    }

    fn poll_worker(&self, backend: &RemoteBackend) -> WorkerView {
        let label = backend.label();
        let health = backend.get_health();
        let report = backend.get_metrics();
        let error = match (&health, &report) {
            (Err(e), _) => Some(e.to_string()),
            (_, Err(e)) => Some(e.to_string()),
            _ => None,
        };
        let report = report.ok();
        let slo = report.as_ref().and_then(|r| evaluate_report(&self.policy, r));
        WorkerView { label, health: health.ok(), report, slo, error }
    }

    fn evaluate_merged(&self, merged: &MetricsSnapshot) -> Option<SloEvaluation> {
        let slo = self.policy.slo.as_ref()?;
        let latency = merged
            .histograms
            .iter()
            .find(|(name, _)| name == WINDOW_LATENCY_METRIC)
            .map(|(_, histogram)| histogram.clone())
            .unwrap_or_default();
        let requests = latency.count();
        let errors = windowed_errors(&self.policy, &merged.gauges);
        Some(slo.evaluate(&latency, requests, errors))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(counter: u64, gauge: f64, samples: &[u64]) -> MetricsReport {
        let mut latency = Histogram::new();
        for s in samples {
            latency.record(*s);
        }
        MetricsReport {
            prometheus: String::new(),
            windowed: vec![(WINDOW_LATENCY_METRIC.to_owned(), latency)],
            counters: vec![("server.batches".to_owned(), counter)],
            gauges: vec![("server.queue_depth".to_owned(), gauge)],
        }
    }

    #[test]
    fn merge_adds_counters_and_gauges_and_merges_histograms() {
        let a = report(3, 1.0, &[100, 200]);
        let b = report(4, 2.0, &[300]);
        let merged = merge_reports([&a, &b]);
        assert_eq!(merged.counters, vec![("server.batches".to_owned(), 7)]);
        assert_eq!(merged.gauges, vec![("server.queue_depth".to_owned(), 3.0)]);
        assert_eq!(merged.histograms.len(), 1);
        assert_eq!(merged.histograms[0].1.count(), 3);
        assert_eq!(merged.histograms[0].1.sum(), 600);
    }

    #[test]
    fn merge_of_nothing_is_empty() {
        assert!(merge_reports([]).is_empty());
    }

    #[test]
    fn merge_is_grouping_insensitive() {
        let a = report(1, 0.5, &[10]);
        let b = report(2, 1.5, &[20, 30]);
        let c = report(3, 2.5, &[40]);
        let all = merge_reports([&a, &b, &c]);
        // ((a + b) + c) via an intermediate snapshot rebuilt as a report
        let ab = merge_reports([&a, &b]);
        let ab_report = MetricsReport {
            prometheus: String::new(),
            windowed: ab.histograms.clone(),
            counters: ab.counters.clone(),
            gauges: ab.gauges.clone(),
        };
        assert_eq!(merge_reports([&ab_report, &c]), all);
    }

    #[test]
    fn evaluate_report_scores_the_windowed_latency() {
        use qrcc_core::obs::SloSpec;
        let policy = MonitorPolicy::default()
            .with_slo(SloSpec::new("lat").with_latency(0.5, 50).with_max_error_rate(0.1));
        let fast = report(1, 0.0, &[10, 20, 30]);
        let eval = evaluate_report(&policy, &fast).expect("slo configured");
        assert_eq!(eval.status, SloStatus::Ok);
        let slow = report(1, 0.0, &[900, 1000, 1100]);
        let eval = evaluate_report(&policy, &slow).expect("slo configured");
        assert_eq!(eval.status, SloStatus::Breached);
    }

    #[test]
    fn windowed_errors_reconstructs_counts_from_the_rate_gauge() {
        let policy = MonitorPolicy { window_us: 10_000_000, ..MonitorPolicy::default() };
        // 0.3 failures/s over a 10 s window = 3 failed batches
        let gauges = vec![(WINDOW_ERROR_RATE_GAUGE.to_owned(), 0.3)];
        assert_eq!(windowed_errors(&policy, &gauges), 3);
        assert_eq!(windowed_errors(&policy, &[]), 0);
    }
}
