//! TCP-level fault injection for transport tests: a proxy that forwards
//! bytes between a client and an upstream [`QrccServer`](crate::QrccServer)
//! and breaks the stream on command — the network counterpart of the
//! backend-level doubles in `qrcc_core::dispatch::testing`
//! ([`FlakyBackend`](qrcc_core::dispatch::testing::FlakyBackend) injects
//! *device* faults above the transport; [`FaultyProxy`] injects *wire*
//! faults below it).
//!
//! Ships behind the crate's `testing` feature (always on for this crate's
//! own tests).

use parking_lot::Mutex;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// What to do to one proxied connection's **server → client** byte stream
/// (the client → server direction always forwards cleanly, so submissions
/// reach the worker and the fault hits mid-reply — the hard case).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProxyFault {
    /// Forward everything untouched.
    Clean,
    /// Forward this many reply bytes, then sever both directions — a
    /// mid-stream disconnect.
    DropAfter(usize),
    /// Forward this many reply bytes, then forward nothing more while
    /// keeping the sockets open — a stalled peer (clients need an I/O
    /// timeout to escape).
    StallAfter(usize),
    /// Forward this many reply bytes untouched, then XOR every further byte
    /// with `0x5A` — a garbled stream that must surface as a typed
    /// transport error, not a crash.
    GarbleAfter(usize),
    /// Forward this many reply bytes at full speed, then *trickle*: drain
    /// the server in small sips on a slow clock — an adversarial client
    /// that reads just often enough to keep every individual server write
    /// under its per-syscall timeout while never letting the reply stream
    /// finish. The server escapes only via its cumulative batch write
    /// budget.
    TrickleAfter(usize),
}

/// A fault-injecting TCP forwarder.
///
/// Each accepted connection takes the next fault from the schedule the
/// proxy was spawned with (connections beyond the schedule are
/// [`ProxyFault::Clean`]), so a test can script "first connection dies
/// mid-reply, reconnects are healthy" and watch the dispatcher rescue the
/// work.
pub struct FaultyProxy {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accepted: Arc<AtomicU64>,
    streams: Arc<Mutex<Vec<TcpStream>>>,
    accept: Option<JoinHandle<()>>,
}

impl FaultyProxy {
    /// Binds an ephemeral local port forwarding to `upstream`, applying
    /// `faults[i]` to the `i`-th accepted connection.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from binding.
    pub fn spawn(upstream: SocketAddr, faults: Vec<ProxyFault>) -> io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let accepted = Arc::new(AtomicU64::new(0));
        let streams: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let shutdown = Arc::clone(&shutdown);
            let accepted = Arc::clone(&accepted);
            let streams = Arc::clone(&streams);
            std::thread::spawn(move || {
                accept_loop(listener, upstream, faults, shutdown, accepted, streams)
            })
        };
        Ok(FaultyProxy { addr, shutdown, accepted, streams, accept: Some(accept) })
    }

    /// The address clients should connect to instead of the upstream's.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections accepted so far.
    pub fn connections(&self) -> u64 {
        self.accepted.load(Ordering::Relaxed)
    }

    /// Stops accepting and severs every proxied connection.
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    fn shutdown_impl(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        let _ = TcpStream::connect(self.addr); // wake the blocking accept
        for stream in self.streams.lock().drain(..) {
            let _ = stream.shutdown(Shutdown::Both);
        }
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }
}

impl Drop for FaultyProxy {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

impl std::fmt::Debug for FaultyProxy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultyProxy")
            .field("addr", &self.addr)
            .field("connections", &self.accepted.load(Ordering::Relaxed))
            .finish()
    }
}

fn accept_loop(
    listener: TcpListener,
    upstream: SocketAddr,
    faults: Vec<ProxyFault>,
    shutdown: Arc<AtomicBool>,
    accepted: Arc<AtomicU64>,
    streams: Arc<Mutex<Vec<TcpStream>>>,
) {
    for client in listener.incoming() {
        if shutdown.load(Ordering::Relaxed) {
            break;
        }
        let Ok(client) = client else { continue };
        let index = accepted.fetch_add(1, Ordering::Relaxed) as usize;
        let fault = faults.get(index).copied().unwrap_or(ProxyFault::Clean);
        let Ok(server) = TcpStream::connect(upstream) else {
            let _ = client.shutdown(Shutdown::Both);
            continue;
        };
        // keep clones so proxy shutdown can sever in-flight connections
        {
            let mut held = streams.lock();
            if let (Ok(c), Ok(s)) = (client.try_clone(), server.try_clone()) {
                held.push(c);
                held.push(s);
            }
        }
        let (Ok(client_rx), Ok(server_rx)) = (client.try_clone(), server.try_clone()) else {
            continue;
        };
        // client → server: always clean, so submissions reach the worker
        let up_shutdown = Arc::clone(&shutdown);
        std::thread::spawn(move || forward(client_rx, server, ProxyFault::Clean, &up_shutdown));
        // server → client: the faulted direction
        let down_shutdown = Arc::clone(&shutdown);
        std::thread::spawn(move || forward(server_rx, client, fault, &down_shutdown));
    }
}

/// Copies bytes `from → to`, applying `fault` to the stream. Returns when
/// either side closes, the fault severs the stream, or the proxy shuts
/// down.
fn forward(mut from: TcpStream, mut to: TcpStream, fault: ProxyFault, shutdown: &AtomicBool) {
    let _ = from.set_read_timeout(Some(Duration::from_millis(50)));
    let mut forwarded = 0usize;
    let mut buf = [0u8; 4096];
    loop {
        if shutdown.load(Ordering::Relaxed) {
            break;
        }
        let n = match from.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                continue;
            }
            Err(_) => break,
        };
        let chunk = &mut buf[..n];
        match fault {
            ProxyFault::Clean => {}
            ProxyFault::DropAfter(limit) => {
                let allowed = limit.saturating_sub(forwarded).min(n);
                if to.write_all(&chunk[..allowed]).is_err() {
                    break;
                }
                forwarded += n;
                if forwarded >= limit {
                    break; // sever both directions below
                }
                continue;
            }
            ProxyFault::StallAfter(limit) => {
                let allowed = limit.saturating_sub(forwarded).min(n);
                if to.write_all(&chunk[..allowed]).is_err() {
                    break;
                }
                forwarded += n;
                if forwarded >= limit {
                    // swallow everything further but keep the client-facing
                    // socket open: the client escapes only via its own I/O
                    // timeout (or the proxy shutting down)
                    while !shutdown.load(Ordering::Relaxed) {
                        match from.read(&mut buf) {
                            Ok(1..) => {}
                            Ok(0) | Err(_) => std::thread::sleep(Duration::from_millis(10)),
                        }
                    }
                    return;
                }
                continue;
            }
            ProxyFault::GarbleAfter(limit) => {
                for (offset, byte) in chunk.iter_mut().enumerate() {
                    if forwarded + offset >= limit {
                        *byte ^= 0x5A;
                    }
                }
            }
            ProxyFault::TrickleAfter(limit) => {
                let allowed = limit.saturating_sub(forwarded).min(n);
                if allowed > 0 && to.write_all(&chunk[..allowed]).is_err() {
                    break;
                }
                forwarded += n;
                if forwarded >= limit {
                    trickle(&mut from, &mut to, shutdown);
                    return;
                }
                continue;
            }
        }
        if to.write_all(chunk).is_err() {
            break;
        }
        forwarded += n;
    }
    let _ = from.shutdown(Shutdown::Both);
    let _ = to.shutdown(Shutdown::Both);
}

/// Drains `from` (the server side) one small sip at a time on a slow clock,
/// forwarding best-effort to the client and **ignoring** client-side write
/// failures: the server-facing socket must stay alive and slowly read even
/// after the client gives up, otherwise the server would escape via a
/// broken pipe instead of its cumulative write budget. Returns once the
/// server closes the connection (budget enforced) or the proxy shuts down.
fn trickle(from: &mut TcpStream, to: &mut TcpStream, shutdown: &AtomicBool) {
    let _ = to.set_write_timeout(Some(Duration::from_millis(50)));
    // ~1 MB/s: slow enough that a multi-megabyte reply stream outlives any
    // sub-second write budget by an order of magnitude, fast enough that
    // draining the kernel-buffered leftovers after the server hangs up does
    // not dominate test wall-clock (an EOF is only observable once the
    // receive buffer — potentially several MB — is empty)
    let mut sip = [0u8; 64 * 1024];
    while !shutdown.load(Ordering::Relaxed) {
        std::thread::sleep(Duration::from_millis(50));
        match from.read(&mut sip) {
            Ok(0) => break,
            Ok(n) => {
                let _ = to.write_all(&sip[..n]);
            }
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {}
            Err(_) => break,
        }
    }
    let _ = from.shutdown(Shutdown::Both);
    let _ = to.shutdown(Shutdown::Both);
}
