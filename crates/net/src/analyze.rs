//! Wire-level pre-flight lints: check a cut plan against a remote worker's
//! handshake-advertised [`Capabilities`] before anything is submitted.
//!
//! The in-process fleet lints (`QL0301`/`QL0302` in [`qrcc_core::analyze`])
//! reason over live [`ExecutionBackend`](qrcc_core::execute::ExecutionBackend)
//! values; a remote fleet often knows only what the handshake advertised.
//! [`lint_capabilities`] bridges that gap: it replays the same
//! width-and-mid-circuit feasibility reasoning — exactly the refinements
//! [`RemoteBackend::can_run`](crate::RemoteBackend) mirrors at run time —
//! against the [`Capabilities`] frame alone, emitting `QL0303` diagnostics,
//! so a fleet operator can reject a plan-to-worker pairing *before* dialling
//! a single batch.

use crate::proto::Capabilities;
use qrcc_core::analyze::{AnalysisReport, Diagnostic, Location};
use qrcc_core::fragment::FragmentSet;
use qrcc_sim::device::needs_mid_circuit;

/// Checks every fragment of `fragments` against a remote worker's
/// `capabilities`, reporting one `QL0303` **Error** per incompatible
/// fragment: a default-variant instantiation wider than the worker's
/// advertised `max_qubits`, or one needing mid-circuit measurement/reset on
/// a worker that does not support it.
///
/// An empty report means the worker can in principle run every fragment.
/// This is a *capability* check only — shot budgets and placement across a
/// whole fleet remain with the in-process `QL0301`/`QL0302` lints.
#[must_use]
pub fn lint_capabilities(capabilities: &Capabilities, fragments: &FragmentSet) -> AnalysisReport {
    let mut report = AnalysisReport::new();
    for fragment in &fragments.fragments {
        let circuit = fragment.instantiate(&fragment.default_variant());
        let width = circuit.num_qubits() as u64;
        if capabilities.max_qubits.is_some_and(|max| width > max) {
            let max = capabilities.max_qubits.unwrap_or(0);
            report.push(
                Diagnostic::error(
                    "QL0303",
                    Location::Fragment(fragment.index),
                    format!(
                        "fragment {} runs {width}-qubit variants but worker '{}' advertises \
                         at most {max} qubits",
                        fragment.index, capabilities.label
                    ),
                )
                .with_suggestion(
                    "cut deeper (smaller device_size) or route this fragment to a wider worker",
                ),
            );
            continue;
        }
        if !capabilities.supports_mid_circuit && needs_mid_circuit(&circuit) {
            report.push(
                Diagnostic::error(
                    "QL0303",
                    Location::Fragment(fragment.index),
                    format!(
                        "fragment {} reuses qubits (mid-circuit measurement/reset) but worker \
                         '{}' does not support mid-circuit operations",
                        fragment.index, capabilities.label
                    ),
                )
                .with_suggestion(
                    "replan without qubit reuse or route this fragment to a \
                     mid-circuit-capable worker",
                ),
            );
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrcc_circuit::Circuit;
    use qrcc_core::QrccConfig;

    fn capabilities(max_qubits: Option<u64>, supports_mid_circuit: bool) -> Capabilities {
        Capabilities {
            max_qubits,
            shots_per_circuit: None,
            supports_mid_circuit,
            label: "test-worker".into(),
        }
    }

    fn planned_fragments(device_size: usize) -> FragmentSet {
        let mut chain = Circuit::new(6);
        for q in 0..5 {
            chain.h(q).cx(q, q + 1);
        }
        let pipeline =
            qrcc_core::pipeline::QrccPipeline::plan(&chain, QrccConfig::new(device_size)).unwrap();
        pipeline.fragments().clone()
    }

    #[test]
    fn a_wide_enough_worker_lints_clean() {
        let fragments = planned_fragments(3);
        let report = lint_capabilities(&capabilities(Some(3), true), &fragments);
        assert!(report.is_clean(), "{report}");
        let unbounded = lint_capabilities(&capabilities(None, true), &fragments);
        assert!(unbounded.is_clean(), "{unbounded}");
    }

    #[test]
    fn a_too_narrow_worker_fires_ql0303_per_fragment() {
        let fragments = planned_fragments(3);
        let report = lint_capabilities(&capabilities(Some(1), true), &fragments);
        assert!(report.errors() > 0, "{report}");
        assert!(report.diagnostics().iter().all(|d| d.code == "QL0303"));
        assert!(report.to_string().contains("test-worker"), "{report}");
    }

    #[test]
    fn a_reuse_plan_on_a_no_mid_circuit_worker_fires_ql0303() {
        let fragments = planned_fragments(3);
        let reuses = fragments
            .fragments
            .iter()
            .any(|fragment| needs_mid_circuit(&fragment.instantiate(&fragment.default_variant())));
        assert!(reuses, "the cut chain plan is expected to exercise qubit reuse");
        let report = lint_capabilities(&capabilities(None, false), &fragments);
        assert!(report.errors() > 0, "{report}");
        assert!(report.to_string().contains("mid-circuit"), "{report}");
    }
}
