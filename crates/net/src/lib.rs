//! Remote execution transport for QRCC: run the six-phase pipeline against
//! a fleet of **actual remote workers** instead of in-process backends.
//!
//! The crate has three parts, layered strictly:
//!
//! * [`proto`] — a versioned, length-prefixed binary wire protocol:
//!   handshake with capability exchange (max qubits, default shots, label),
//!   batch submission with per-circuit shot counts, streamed per-circuit
//!   result frames, heartbeats, and typed error frames. Circuits travel as
//!   OpenQASM text ([`qrcc_circuit::qasm::to_qasm`] /
//!   [`qrcc_circuit::qasm::from_qasm`]), so the wire format is
//!   human-inspectable and independent of the IR's memory layout.
//! * [`server`] — [`QrccServer`], a `std::net::TcpListener` worker wrapping
//!   **any** local [`ExecutionBackend`](qrcc_core::execute::ExecutionBackend)
//!   (thread-per-connection, graceful shutdown, live statistics). Bind port
//!   0 for collision-free ephemeral ports in tests and fleets.
//! * [`client`] — [`RemoteBackend`], an
//!   [`ExecutionBackend`](qrcc_core::execute::ExecutionBackend) over a
//!   reconnecting connection pool. It drops straight into a
//!   [`DeviceRegistry`](qrcc_core::schedule::DeviceRegistry), where the
//!   dispatch layer's retry-with-exclusion and bounded in-flight windows
//!   rescue real network faults **unchanged**: I/O errors, disconnects and
//!   timeouts surface as
//!   [`CoreError::BackendUnavailable`](qrcc_core::CoreError::BackendUnavailable)
//!   (transient — retry elsewhere), protocol violations as
//!   [`CoreError::Transport`](qrcc_core::CoreError::Transport).
//! * [`monitor`] — [`FleetMonitor`], a client-side health poller: fetch
//!   every worker's live scrape (`GetMetrics` / `GetHealth`, protocol v3+)
//!   on a [`MonitorPolicy`](qrcc_core::obs::MonitorPolicy) cadence, merge
//!   the windowed views into one fleet snapshot, and score the configured
//!   SLO per worker and fleet-wide.
//!
//! The `testing` feature adds `testing::FaultyProxy`, a TCP forwarder
//! that drops, stalls or garbles the byte stream mid-batch — the wire-level
//! counterpart of `qrcc_core::dispatch::testing`'s backend doubles.
//!
//! # Example: a loopback fleet
//!
//! ```rust
//! use qrcc_circuit::Circuit;
//! use qrcc_core::execute::{ExactBackend, ExecutionBackend};
//! use qrcc_net::{QrccServer, RemoteBackend};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let server = QrccServer::bind("127.0.0.1:0", ExactBackend::capped(3))?.spawn();
//! let remote = RemoteBackend::connect(server.addr())?;
//! assert_eq!(remote.max_qubits(), Some(3));
//!
//! let mut bell = Circuit::new(2);
//! bell.h(0).cx(0, 1).measure_all();
//! let distribution = remote.run_one(&bell)?;
//! assert!((distribution[0b00] - 0.5).abs() < 1e-12);
//! server.shutdown();
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod analyze;
pub mod client;
pub mod monitor;
pub mod proto;
pub mod server;
#[cfg(any(test, feature = "testing"))]
pub mod testing;

pub use analyze::lint_capabilities;
pub use client::{RemoteBackend, DEFAULT_IO_TIMEOUT};
pub use monitor::{FleetMonitor, FleetView, WorkerView};
pub use proto::{
    BatchTelemetry, Capabilities, HealthReport, HealthState, MetricsReport, ProtoError,
    TraceContext, PROTOCOL_VERSION,
};
pub use server::{ConnectionStats, QrccServer, ServerHandle, ServerStats};
