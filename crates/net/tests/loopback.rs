//! Loopback integration tests of the transport layer itself: handshake and
//! capability exchange, batch submission with per-circuit shots, heartbeat,
//! per-circuit failure splicing, graceful shutdown, pooled reconnects, and
//! the typed error mapping under injected wire faults (`FaultyProxy`).

use qrcc_circuit::Circuit;
use qrcc_core::execute::{ExactBackend, ExecutionBackend, ShotsBackend};
use qrcc_core::CoreError;
use qrcc_net::proto::{self, Frame, WireErrorKind, PROTOCOL_VERSION};
use qrcc_net::testing::{FaultyProxy, ProxyFault};
use qrcc_net::{Capabilities, QrccServer, RemoteBackend};
use qrcc_sim::device::{Device, DeviceConfig};
use std::net::TcpStream;
use std::time::Duration;

fn bell() -> Circuit {
    let mut c = Circuit::new(2);
    c.h(0).cx(0, 1).measure_all();
    c
}

#[test]
fn handshake_exchanges_capabilities_and_port_zero_binds_are_distinct() {
    let a = QrccServer::bind("127.0.0.1:0", ExactBackend::capped(3)).unwrap().spawn();
    let b = QrccServer::bind("127.0.0.1:0", ExactBackend::new()).unwrap().spawn();
    assert_ne!(a.addr().port(), 0, "port 0 must resolve to a real ephemeral port");
    assert_ne!(a.addr(), b.addr(), "two ephemeral binds must not collide");

    let remote_a = RemoteBackend::connect(a.addr()).unwrap();
    assert_eq!(remote_a.max_qubits(), Some(3));
    assert_eq!(remote_a.shots_per_circuit(), None);
    assert_eq!(remote_a.capabilities().label, "exact(3q)");
    assert!(remote_a.label().starts_with("remote(exact(3q) @ "));

    let remote_b = RemoteBackend::connect(b.addr()).unwrap();
    assert_eq!(remote_b.max_qubits(), None);
    a.shutdown();
    b.shutdown();
}

#[test]
fn remote_execution_matches_in_process_bit_for_bit() {
    let server = QrccServer::bind("127.0.0.1:0", ExactBackend::new()).unwrap().spawn();
    let remote = RemoteBackend::connect(server.addr()).unwrap();
    let local = ExactBackend::new();

    let mut circuits = Vec::new();
    for n in 0..5 {
        let mut c = Circuit::new(3);
        c.h(0).ry(0.17 * (n as f64 + 1.0), 1).cx(0, 1).cx(1, 2).measure_all();
        circuits.push(c);
    }
    let local_dists = local.run_batch(&circuits);
    let remote_dists = remote.run_batch(&circuits);
    for (a, b) in local_dists.iter().zip(&remote_dists) {
        let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.to_bits(), y.to_bits(), "distributions must survive bit-exactly");
        }
    }
    assert_eq!(remote.executions(), circuits.len() as u64);

    let stats = server.stats();
    assert_eq!(stats.batches, 1);
    assert_eq!(stats.circuits_ok, circuits.len() as u64);
    assert_eq!(stats.circuits_failed, 0);
    server.shutdown();
}

#[test]
fn per_circuit_shots_reach_the_remote_sampling_backend() {
    // same seed locally and remotely: identical per-circuit shot counts must
    // reproduce identical sampling streams through the wire
    let remote_dev = Device::new(DeviceConfig::ideal(2).with_seed(5));
    let server =
        QrccServer::bind("127.0.0.1:0", ShotsBackend::new(remote_dev, 1_000)).unwrap().spawn();
    let remote = RemoteBackend::connect(server.addr()).unwrap();
    assert_eq!(remote.shots_per_circuit(), Some(1_000));

    let local = ShotsBackend::new(Device::new(DeviceConfig::ideal(2).with_seed(5)), 1_000);
    let circuits = vec![bell(), bell(), bell()];
    let shots = vec![500u64, 2_000, 1_500];
    let local_dists = local.run_batch_with_shots(&circuits, &shots);
    let remote_dists = remote.run_batch_with_shots(&circuits, &shots);
    for (a, b) in local_dists.iter().zip(&remote_dists) {
        assert_eq!(a.as_ref().unwrap(), b.as_ref().unwrap());
    }
    server.shutdown();
}

#[test]
fn per_circuit_failures_splice_into_the_batch() {
    let server = QrccServer::bind("127.0.0.1:0", ExactBackend::capped(2)).unwrap().spawn();
    let remote = RemoteBackend::connect(server.addr()).unwrap();
    let mut wide = Circuit::new(3);
    wide.h(0).cx(0, 1).cx(1, 2).measure_all();
    let results = remote.run_batch(&[bell(), wide, bell()]);
    assert!(results[0].is_ok());
    assert!(
        matches!(&results[1], Err(CoreError::BackendUnavailable { reason, .. }) if reason.contains("remote execution failed")),
        "{:?}",
        results[1]
    );
    assert!(results[2].is_ok());
    assert_eq!(remote.executions(), 2, "only confirmed successes count");
    let stats = server.stats();
    assert_eq!(stats.circuits_ok, 2);
    assert_eq!(stats.circuits_failed, 1);
    server.shutdown();
}

#[test]
fn mid_circuit_support_crosses_the_handshake_into_can_run() {
    // a worker whose device rejects mid-circuit measurement/reset must say
    // so at handshake time, so the router never places qubit-reuse circuits
    // on it (in-process the same backend's can_run refinement does this)
    let mut reuse = Circuit::new(1);
    reuse.h(0).measure(0, 0).reset(0).h(0).measure(0, 1);

    let no_mcm = Device::new(DeviceConfig::ideal(2).without_mid_circuit().with_seed(3));
    let strict = QrccServer::bind("127.0.0.1:0", ShotsBackend::new(no_mcm, 100)).unwrap().spawn();
    let strict_remote = RemoteBackend::connect(strict.addr()).unwrap();
    assert!(!strict_remote.capabilities().supports_mid_circuit);
    assert!(!strict_remote.can_run(&reuse), "router must avoid this worker for reuse circuits");
    assert!(strict_remote.can_run(&bell()), "terminal measurements stay routable");

    let lenient = QrccServer::bind("127.0.0.1:0", ExactBackend::capped(2)).unwrap().spawn();
    let lenient_remote = RemoteBackend::connect(lenient.addr()).unwrap();
    assert!(lenient_remote.capabilities().supports_mid_circuit);
    assert!(lenient_remote.can_run(&reuse));
    strict.shutdown();
    lenient.shutdown();
}

#[test]
fn heartbeat_round_trips() {
    let server = QrccServer::bind("127.0.0.1:0", ExactBackend::new()).unwrap().spawn();
    let remote = RemoteBackend::connect(server.addr()).unwrap();
    let rtt = remote.ping().unwrap();
    assert!(rtt < Duration::from_secs(5));
    // the connection is back in the pool and still serves batches
    assert!(remote.run_one(&bell()).is_ok());
    assert_eq!(remote.connections_dialled(), 1, "ping and batch reuse the pooled connection");
    server.shutdown();
}

#[test]
fn version_mismatch_is_rejected_with_a_typed_error_frame() {
    let server = QrccServer::bind("127.0.0.1:0", ExactBackend::new()).unwrap().spawn();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    proto::write_frame(&mut stream, &Frame::ClientHello { version: PROTOCOL_VERSION + 7 }).unwrap();
    match proto::read_frame(&mut stream).unwrap() {
        Frame::Error { kind, message } => {
            assert_eq!(kind, WireErrorKind::VersionMismatch);
            assert!(message.contains(&PROTOCOL_VERSION.to_string()), "{message}");
        }
        other => panic!("expected an Error frame, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn non_hello_opening_frame_is_a_protocol_error() {
    let server = QrccServer::bind("127.0.0.1:0", ExactBackend::new()).unwrap().spawn();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    proto::write_frame(&mut stream, &Frame::Ping { nonce: 1 }).unwrap();
    match proto::read_frame(&mut stream).unwrap() {
        Frame::Error { kind, .. } => assert_eq!(kind, WireErrorKind::Protocol),
        other => panic!("expected an Error frame, got {other:?}"),
    }
    assert_eq!(server.stats().protocol_errors, 1);
    server.shutdown();
}

#[test]
fn mid_stream_disconnect_fails_the_batch_and_the_pool_reconnects() {
    let server = QrccServer::bind("127.0.0.1:0", ExactBackend::new()).unwrap().spawn();
    // connection 0: handshake passes (small), replies die mid-stream;
    // connection 1 onwards: clean
    let proxy = FaultyProxy::spawn(server.addr(), vec![ProxyFault::DropAfter(96)]).unwrap();
    let remote = RemoteBackend::connect_with_timeout(proxy.addr(), Duration::from_secs(5)).unwrap();

    let circuits = vec![bell(), bell(), bell(), bell()];
    let results = remote.run_batch(&circuits);
    assert!(
        results.iter().all(|r| matches!(r, Err(CoreError::BackendUnavailable { .. }))),
        "a dead reply stream fails the whole batch as transient: {results:?}"
    );
    assert_eq!(remote.executions(), 0, "no confirmed executions on a dead stream");

    // the pool dials a fresh (clean) connection and the backend recovers
    let recovered = remote.run_batch(&circuits);
    assert!(recovered.iter().all(Result::is_ok));
    assert_eq!(remote.connections_dialled(), 2);
    assert_eq!(proxy.connections(), 2);
    proxy.shutdown();
    server.shutdown();
}

#[test]
fn garbled_stream_surfaces_as_a_transport_error() {
    let server = QrccServer::bind("127.0.0.1:0", ExactBackend::new()).unwrap().spawn();
    let proxy = FaultyProxy::spawn(server.addr(), vec![ProxyFault::GarbleAfter(64)]).unwrap();
    let remote = RemoteBackend::connect_with_timeout(proxy.addr(), Duration::from_secs(5)).unwrap();
    let results = remote.run_batch(&[bell(), bell()]);
    assert!(
        results.iter().all(|r| matches!(r, Err(CoreError::Transport { .. }))),
        "garbled frames are protocol violations, not transient faults: {results:?}"
    );
    proxy.shutdown();
    server.shutdown();
}

#[test]
fn stalled_stream_times_out_as_backend_unavailable() {
    let server = QrccServer::bind("127.0.0.1:0", ExactBackend::new()).unwrap().spawn();
    // threshold past the ~18-byte ServerHello and the 13-byte Pong of the
    // checkout liveness ping, but inside the first (53-byte) reply frame
    let proxy = FaultyProxy::spawn(server.addr(), vec![ProxyFault::StallAfter(48)]).unwrap();
    let remote =
        RemoteBackend::connect_with_timeout(proxy.addr(), Duration::from_millis(400)).unwrap();
    let results = remote.run_batch(&[bell()]);
    assert!(
        matches!(&results[0], Err(CoreError::BackendUnavailable { reason, .. }) if reason.contains("connection error")),
        "{results:?}"
    );
    proxy.shutdown();
    server.shutdown();
}

#[test]
fn wrong_length_distributions_are_rejected_as_transport_errors() {
    // a hand-rolled "server" answering with a distribution that does not
    // cover the circuit's classical register: the client must refuse it
    // (silently folding it into reconstruction would corrupt the output)
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let mock = std::thread::spawn(move || {
        let (mut s, _) = listener.accept().unwrap();
        assert!(matches!(proto::read_frame(&mut s).unwrap(), Frame::ClientHello { .. }));
        proto::write_frame(
            &mut s,
            &Frame::ServerHello {
                version: PROTOCOL_VERSION,
                capabilities: Capabilities {
                    max_qubits: None,
                    shots_per_circuit: None,
                    supports_mid_circuit: true,
                    label: "mock".into(),
                },
            },
        )
        .unwrap();
        loop {
            match proto::read_frame(&mut s).unwrap() {
                // answer the pool's checkout liveness pings
                Frame::Ping { nonce } => {
                    proto::write_frame(&mut s, &Frame::Pong { nonce }).unwrap();
                }
                Frame::SubmitBatch { batch, circuits, .. } => {
                    assert_eq!(circuits.len(), 1);
                    // bell() measures 2 clbits, so 4 entries are owed — send 2
                    proto::write_frame(
                        &mut s,
                        &Frame::CircuitResult { batch, index: 0, distribution: vec![0.5, 0.5] },
                    )
                    .unwrap();
                    proto::write_frame(
                        &mut s,
                        &Frame::BatchDone { batch, executed: 1, telemetry: None },
                    )
                    .unwrap();
                    break;
                }
                other => panic!("expected SubmitBatch, got {other:?}"),
            }
        }
    });
    let remote = RemoteBackend::connect(addr).unwrap();
    let results = remote.run_batch(&[bell()]);
    assert!(matches!(&results[0], Err(CoreError::Transport { .. })), "{results:?}");
    mock.join().unwrap();
}

#[test]
fn unparseable_circuits_fail_deterministically_with_the_protocol_kind() {
    // a circuit the worker cannot parse is a deterministic failure: it must
    // carry the Protocol kind (client maps it to CoreError::Transport, not
    // the retryable BackendUnavailable), while the rest of the batch runs
    let server = QrccServer::bind("127.0.0.1:0", ExactBackend::new()).unwrap().spawn();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    proto::write_frame(&mut stream, &Frame::ClientHello { version: PROTOCOL_VERSION }).unwrap();
    assert!(matches!(proto::read_frame(&mut stream).unwrap(), Frame::ServerHello { .. }));
    proto::write_frame(
        &mut stream,
        &Frame::SubmitBatch {
            batch: 3,
            circuits: vec![
                "qreg q[1];\nbogus q[0];\n".into(),
                qrcc_circuit::qasm::to_qasm(&bell()),
            ],
            shots: None,
            trace: None,
        },
    )
    .unwrap();
    match proto::read_frame(&mut stream).unwrap() {
        Frame::CircuitFailed { index: 0, kind, reason, .. } => {
            assert_eq!(kind, WireErrorKind::Protocol);
            assert!(reason.contains("qasm parse error"), "{reason}");
        }
        other => panic!("expected the parse failure first, got {other:?}"),
    }
    assert!(matches!(
        proto::read_frame(&mut stream).unwrap(),
        Frame::CircuitResult { index: 1, .. }
    ));
    assert!(matches!(
        proto::read_frame(&mut stream).unwrap(),
        Frame::BatchDone { executed: 1, .. }
    ));
    server.shutdown();
}

#[test]
fn device_level_faults_cross_the_wire_as_per_circuit_failures() {
    // the promoted dispatch::testing doubles compose with the transport: a
    // FlakyBackend *behind* the server injects device faults, and they reach
    // the client as per-circuit BackendUnavailable — exactly like local ones
    use qrcc_core::dispatch::testing::FlakyBackend;
    let flaky = FlakyBackend::transient(ExactBackend::new(), 7, 1.0);
    let server = QrccServer::bind("127.0.0.1:0", flaky).unwrap().spawn();
    let remote = RemoteBackend::connect(server.addr()).unwrap();
    let first = remote.run_one(&bell());
    assert!(
        matches!(&first, Err(CoreError::BackendUnavailable { reason, .. }) if reason.contains("injected fault")),
        "{first:?}"
    );
    let second = remote.run_one(&bell());
    assert!(second.is_ok(), "the transient fault clears on resubmission: {second:?}");
    assert_eq!(server.stats().circuits_failed, 1);
    assert_eq!(server.stats().circuits_ok, 1);
    server.shutdown();
}

#[test]
fn statically_invalid_circuits_are_rejected_before_the_backend_runs() {
    // a circuit the pre-flight analyzer can prove unrunnable on this worker
    // (too wide for the capped backend) must be rejected *before* the batch
    // call, with the rendered QL diagnostic in the reason and the Backend
    // kind so the client's dispatcher re-routes instead of giving up
    let server = QrccServer::bind("127.0.0.1:0", ExactBackend::capped(2)).unwrap().spawn();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    proto::write_frame(&mut stream, &Frame::ClientHello { version: PROTOCOL_VERSION }).unwrap();
    assert!(matches!(proto::read_frame(&mut stream).unwrap(), Frame::ServerHello { .. }));
    let mut wide = Circuit::new(3);
    wide.h(0).cx(0, 1).cx(1, 2).measure_all();
    proto::write_frame(
        &mut stream,
        &Frame::SubmitBatch {
            batch: 11,
            circuits: vec![
                qrcc_circuit::qasm::to_qasm(&wide),
                qrcc_circuit::qasm::to_qasm(&bell()),
            ],
            shots: None,
            trace: None,
        },
    )
    .unwrap();
    match proto::read_frame(&mut stream).unwrap() {
        Frame::CircuitFailed { index: 0, kind, reason, .. } => {
            assert_eq!(kind, WireErrorKind::Backend, "pre-flight rejections stay re-routable");
            assert!(reason.contains("rejected by pre-flight analysis"), "{reason}");
            assert!(reason.contains("QL0301"), "the QL code must survive the wire: {reason}");
        }
        other => panic!("expected the pre-flight rejection first, got {other:?}"),
    }
    assert!(matches!(
        proto::read_frame(&mut stream).unwrap(),
        Frame::CircuitResult { index: 1, .. }
    ));
    assert!(matches!(
        proto::read_frame(&mut stream).unwrap(),
        Frame::BatchDone { executed: 1, .. }
    ));
    server.shutdown();
}

#[test]
fn trickle_reading_client_is_bounded_by_the_cumulative_write_budget() {
    // an adversarial client that drains replies a sip at a time keeps every
    // individual write syscall comfortably under the per-syscall timeout, so
    // only the *cumulative* batch write budget can unpin the connection
    // thread — this replays that attack and expects a fast, clean escape
    let server = QrccServer::bind("127.0.0.1:0", ExactBackend::new())
        .unwrap()
        .with_batch_write_budget(Duration::from_millis(500))
        .spawn();
    // the ~60-byte handshake passes at full speed; the trickle hits mid-reply
    let proxy = FaultyProxy::spawn(server.addr(), vec![ProxyFault::TrickleAfter(256)]).unwrap();
    let mut stream = TcpStream::connect(proxy.addr()).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    proto::write_frame(&mut stream, &Frame::ClientHello { version: PROTOCOL_VERSION }).unwrap();
    assert!(matches!(proto::read_frame(&mut stream).unwrap(), Frame::ServerHello { .. }));

    // 8 × 2^17-entry reply distributions ≈ 8 MiB — far more than the
    // loopback kernel buffers absorb, so reply writes really wait on the
    // (trickling) reader instead of completing into the socket buffer
    let mut big = Circuit::new(17);
    big.h(0).measure_all();
    let started = std::time::Instant::now();
    proto::write_frame(
        &mut stream,
        &Frame::SubmitBatch {
            batch: 1,
            circuits: vec![qrcc_circuit::qasm::to_qasm(&big); 8],
            shots: None,
            trace: None,
        },
    )
    .unwrap();

    // drain raw bytes until the server enforces the budget and drops the
    // connection (the proxy mirrors the close); per-syscall timeouts alone
    // would let this trickle run for minutes
    let mut sink = [0u8; 4096];
    loop {
        match std::io::Read::read(&mut stream, &mut sink) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
    let elapsed = started.elapsed();
    assert!(
        elapsed < Duration::from_secs(20),
        "the write budget must cut the trickle short, took {elapsed:?}"
    );
    assert_eq!(server.stats().batches, 0, "a starved batch must not count as served");

    // the server survives the attack: a clean direct connection still works
    let remote = RemoteBackend::connect(server.addr()).unwrap();
    assert!(remote.run_one(&bell()).is_ok());
    proxy.shutdown();
    server.shutdown();
}

#[test]
fn graceful_shutdown_disconnects_clients_cleanly() {
    let server = QrccServer::bind("127.0.0.1:0", ExactBackend::new()).unwrap().spawn();
    let addr = server.addr();
    let remote = RemoteBackend::connect(addr).unwrap();
    assert!(remote.run_one(&bell()).is_ok());
    let ledgers = server.shutdown();
    // shutdown joins every connection thread and returns its ledger
    assert_eq!(ledgers.iter().map(|c| c.batches).sum::<u64>(), 1);
    assert_eq!(ledgers.iter().map(|c| c.circuits_ok).sum::<u64>(), 1);
    // the pooled connection is dead and no listener answers the redial
    let result = remote.run_one(&bell());
    assert!(matches!(result, Err(CoreError::BackendUnavailable { .. })), "{result:?}");
}
