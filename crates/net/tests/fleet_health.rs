//! Fleet health end to end: the windowed-view algebra (proptests over
//! rotation, expiry and the fleet merge) plus live `GetMetrics` /
//! `GetHealth` behaviour on real loopback servers — a deliberately slow
//! worker breaching its own SLO while the fleet-merged view still
//! validates, and drain visibility ahead of shutdown.

use std::time::Duration;

use proptest::prelude::*;
use qrcc_circuit::Circuit;
use qrcc_core::execute::{ExactBackend, ExecutionBackend};
use qrcc_core::obs::{Histogram, MonitorPolicy, SloSpec, SloStatus, WindowedHistogram};
use qrcc_core::CoreError;
use qrcc_net::monitor::{merge_reports, FleetMonitor, WINDOW_LATENCY_METRIC};
use qrcc_net::proto::MetricsReport;
use qrcc_net::{HealthState, QrccServer, RemoteBackend};

fn bell() -> Circuit {
    let mut bell = Circuit::new(2);
    bell.h(0).cx(0, 1).measure_all();
    bell
}

// ---------------------------------------------------------------- proptests

/// Replays sorted samples into a windowed histogram and returns it.
fn replay(window_ms: u64, buckets: usize, times: &[u64]) -> WindowedHistogram {
    let mut w = WindowedHistogram::new(Duration::from_millis(window_ms), buckets);
    for (i, t) in times.iter().enumerate() {
        w.record_at(*t, i as u64 + 1);
    }
    w
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The tentpole invariant: a windowed readout IS the merge of the live
    /// buckets — nothing more, nothing less — at any readout time.
    #[test]
    fn rotated_window_equals_merge_of_live_buckets(
        window_ms in 1u64..50,
        buckets in 1usize..8,
        mut times in proptest::collection::vec(0u64..200_000, 1..60),
        advance in 0u64..300_000,
    ) {
        times.sort_unstable();
        let w = replay(window_ms, buckets, &times);
        let now = times.last().copied().unwrap_or(0) + advance;
        let mut manual = Histogram::new();
        for (_, bucket) in w.live_buckets_at(now) {
            manual.merge(bucket);
        }
        prop_assert_eq!(w.snapshot_at(now), manual);
    }

    /// Expired buckets never leak: the windowed count at any readout time
    /// is exactly the number of samples whose grid bucket is still live,
    /// and every live bucket start sits inside the window.
    #[test]
    fn expired_buckets_never_leak_into_quantiles(
        window_ms in 1u64..50,
        buckets in 1usize..8,
        mut times in proptest::collection::vec(0u64..200_000, 1..60),
        advance in 0u64..300_000,
    ) {
        times.sort_unstable();
        let w = replay(window_ms, buckets, &times);
        let now = times.last().copied().unwrap_or(0) + advance;
        let width = w.bucket_width().as_micros() as u64;
        let window_us = w.window().as_micros() as u64;
        let expected = times
            .iter()
            .filter(|t| {
                let start = *t - *t % width;
                start + window_us > now
            })
            .count() as u64;
        prop_assert_eq!(w.snapshot_at(now).count(), expected);
        for (start, _) in w.live_buckets_at(now) {
            prop_assert!(start <= now && now < start + window_us);
        }
    }

    /// The fleet merge is elementwise and grouping-insensitive: merging all
    /// reports at once equals merging any prefix first and folding the rest
    /// in, and every counter / histogram count is the elementwise sum.
    #[test]
    fn fleet_merge_is_elementwise_and_grouping_insensitive(
        per_worker in proptest::collection::vec(
            (0u64..1_000, proptest::collection::vec(1u64..100_000, 0..20)),
            1..5,
        ),
        split in 0usize..5,
    ) {
        let reports: Vec<MetricsReport> = per_worker
            .iter()
            .map(|(batches, samples)| {
                let mut latency = Histogram::new();
                for s in samples {
                    latency.record(*s);
                }
                MetricsReport {
                    prometheus: String::new(),
                    windowed: vec![(WINDOW_LATENCY_METRIC.to_owned(), latency)],
                    counters: vec![("server.batches".to_owned(), *batches)],
                    gauges: vec![("server.queue_depth".to_owned(), *batches as f64)],
                }
            })
            .collect();
        let all = merge_reports(reports.iter());

        // elementwise sums
        let batches: u64 = per_worker.iter().map(|(b, _)| *b).sum();
        let samples: u64 = per_worker.iter().map(|(_, s)| s.len() as u64).sum();
        prop_assert_eq!(all.counters[0].1, batches);
        prop_assert_eq!(all.histograms[0].1.count(), samples);
        prop_assert!((all.gauges[0].1 - batches as f64).abs() < 1e-6);

        // grouping-insensitive: fold a prefix into one report first
        let split = split.min(reports.len());
        let prefix = merge_reports(reports[..split].iter());
        let prefix_report = MetricsReport {
            prometheus: String::new(),
            windowed: prefix.histograms.clone(),
            counters: prefix.counters.clone(),
            gauges: prefix.gauges.clone(),
        };
        let regrouped =
            merge_reports(std::iter::once(&prefix_report).chain(reports[split..].iter()));
        prop_assert_eq!(regrouped, all);
    }
}

// ------------------------------------------------------- loopback fixtures

/// An exact backend that sleeps before answering — the "deliberately slow
/// worker" whose windowed latency blows its SLO.
struct SlowBackend {
    inner: ExactBackend,
    delay: Duration,
}

impl ExecutionBackend for SlowBackend {
    fn run_one(&self, circuit: &Circuit) -> Result<Vec<f64>, CoreError> {
        std::thread::sleep(self.delay);
        self.inner.run_one(circuit)
    }

    fn max_qubits(&self) -> Option<usize> {
        self.inner.max_qubits()
    }

    fn label(&self) -> String {
        "slow".to_owned()
    }

    fn executions(&self) -> u64 {
        self.inner.executions()
    }
}

// ------------------------------------------------------------- live tests

/// The monitor's merged snapshot must equal the elementwise merge of the
/// per-worker reports it captured in the same poll — on real sockets.
#[test]
fn merged_view_equals_elementwise_merge_of_polled_reports() {
    let servers: Vec<_> = (0..2)
        .map(|_| QrccServer::bind("127.0.0.1:0", ExactBackend::capped(3)).unwrap().spawn())
        .collect();
    let backends: Vec<_> =
        servers.iter().map(|s| RemoteBackend::connect(s.addr()).unwrap()).collect();
    for backend in &backends {
        for _ in 0..3 {
            backend.run_one(&bell()).unwrap();
        }
    }

    let mut monitor = FleetMonitor::new(MonitorPolicy::default());
    for backend in &backends {
        monitor.add_worker(backend);
    }
    let view = monitor.poll_once();

    assert_eq!(view.unreachable, 0, "both workers must answer");
    assert_eq!(view.count_state(HealthState::Accepting), 2);
    let manual = merge_reports(view.workers.iter().filter_map(|w| w.report.as_ref()));
    assert_eq!(view.merged, manual, "the fleet view must be the pure elementwise merge");

    // both workers served batches, and the merged window saw all of them
    let batches = view.merged.counters.iter().find(|(n, _)| n == "server.batches").map(|(_, v)| *v);
    assert_eq!(batches, Some(6));
    let latency = view
        .merged
        .histograms
        .iter()
        .find(|(n, _)| n == WINDOW_LATENCY_METRIC)
        .map(|(_, h)| h.clone())
        .expect("windowed latency present");
    assert_eq!(latency.count(), 6);

    for server in servers {
        server.shutdown();
    }
}

/// A deliberately slow worker drives its own latency SLO to `Breached`
/// while the fleet-merged view — dominated by the fast worker's samples —
/// still validates.
#[test]
fn slow_worker_breaches_its_slo_while_the_fleet_still_validates() {
    let fast = QrccServer::bind("127.0.0.1:0", ExactBackend::capped(3)).unwrap().spawn();
    let slow = QrccServer::bind(
        "127.0.0.1:0",
        SlowBackend { inner: ExactBackend::capped(3), delay: Duration::from_millis(60) },
    )
    .unwrap()
    .spawn();

    let fast_backend = RemoteBackend::connect(fast.addr()).unwrap();
    let slow_backend = RemoteBackend::connect(slow.addr()).unwrap();
    // 20 sub-millisecond batches vs 2 at ~60 ms: the merged p50 stays fast
    for _ in 0..20 {
        fast_backend.run_one(&bell()).unwrap();
    }
    for _ in 0..2 {
        slow_backend.run_one(&bell()).unwrap();
    }

    // SLO: median batch latency under 20 ms
    let policy = MonitorPolicy::default()
        .with_slo(SloSpec::new("latency").with_latency(0.5, 20_000).with_max_error_rate(0.01));
    let monitor = FleetMonitor::new(policy).with_worker(&fast_backend).with_worker(&slow_backend);
    let view = monitor.poll_once();

    assert_eq!(view.unreachable, 0);
    let slow_eval = view.workers[1].slo.as_ref().expect("slo configured");
    assert_eq!(
        slow_eval.status,
        SloStatus::Breached,
        "the slow worker's own median must blow the 20 ms target: {slow_eval}"
    );
    let fast_eval = view.workers[0].slo.as_ref().expect("slo configured");
    assert_eq!(fast_eval.status, SloStatus::Ok, "the fast worker stays within SLO: {fast_eval}");
    let fleet = view.slo.as_ref().expect("fleet slo evaluated");
    assert_eq!(
        fleet.status,
        SloStatus::Ok,
        "the fleet median is dominated by the fast worker: {fleet}"
    );
    assert_eq!(view.status(), SloStatus::Ok);
    assert_eq!(view.worst_worker_status(), SloStatus::Breached);

    fast.shutdown();
    slow.shutdown();
}

/// `GetHealth` flips to draining the moment the server begins drain —
/// while the socket still answers — and `ServerHandle::shutdown` drains
/// before closing.
#[test]
fn get_health_flips_to_draining_before_sockets_close() {
    let server = QrccServer::bind("127.0.0.1:0", ExactBackend::capped(3)).unwrap().spawn();
    let backend = RemoteBackend::connect(server.addr()).unwrap();
    backend.run_one(&bell()).unwrap();

    let health = backend.get_health().unwrap();
    assert_eq!(health.state, HealthState::Accepting);
    assert_eq!(health.queue_depth, 0);
    assert!(health.queue_high_water >= 1, "the batch must have raised the high-water mark");

    server.begin_drain();
    let health = backend.get_health().unwrap();
    assert_eq!(health.state, HealthState::Draining, "drain must be visible on the wire");
    // the handle agrees with the wire
    assert_eq!(server.health().state, HealthState::Draining);

    server.shutdown();
}

/// An unreachable worker is reported as such without failing the poll, and
/// the merged view covers only the workers that answered.
#[test]
fn unreachable_workers_degrade_to_a_flagged_view() {
    let live = QrccServer::bind("127.0.0.1:0", ExactBackend::capped(3)).unwrap().spawn();
    let doomed = QrccServer::bind("127.0.0.1:0", ExactBackend::capped(3)).unwrap().spawn();

    let live_backend = RemoteBackend::connect(live.addr()).unwrap();
    let doomed_backend = RemoteBackend::connect(doomed.addr()).unwrap();
    live_backend.run_one(&bell()).unwrap();
    doomed.shutdown();

    let monitor = FleetMonitor::new(MonitorPolicy::default())
        .with_worker(&live_backend)
        .with_worker(&doomed_backend);
    let view = monitor.poll_once();

    assert_eq!(view.unreachable, 1);
    assert!(view.workers[0].reachable());
    assert!(!view.workers[1].reachable());
    assert!(view.workers[1].error.is_some(), "the failure reason must be surfaced");
    let batches = view.merged.counters.iter().find(|(n, _)| n == "server.batches").map(|(_, v)| *v);
    assert_eq!(batches, Some(1), "the merged view covers only the reachable worker");

    live.shutdown();
}
