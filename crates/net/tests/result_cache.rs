//! Server-side result-cache tests over the loopback transport: a warm
//! `QrccServer` must answer repeats from its cache without touching its
//! backend, doubled shot requests must cross the wire as delta top-ups, the
//! per-connection ledger must carry the cache counters, and a persisted
//! snapshot must survive a full server kill-and-restart.

use qrcc_circuit::Circuit;
use qrcc_core::cache::ResultCachePolicy;
use qrcc_core::execute::{ExecutionBackend, ShotsBackend};
use qrcc_net::{QrccServer, RemoteBackend};
use qrcc_sim::device::{Device, DeviceConfig};

fn scratch(name: &str) -> std::path::PathBuf {
    static COUNTER: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
    let n = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    std::env::temp_dir().join(format!("qrcc-net-cache-{}-{n}-{name}", std::process::id()))
}

/// Three structurally distinct 2-qubit circuits — three cache entries.
fn workload() -> Vec<Circuit> {
    (0..3)
        .map(|k| {
            let mut c = Circuit::new(2);
            c.h(0).ry(0.3 * (k as f64 + 1.0), 1).cx(0, 1).measure_all();
            c
        })
        .collect()
}

fn sampling_server(seed: u64, shots: u64) -> QrccServer {
    let device = Device::new(DeviceConfig::ideal(2).with_seed(seed));
    QrccServer::bind("127.0.0.1:0", ShotsBackend::new(device, shots)).unwrap()
}

#[test]
fn a_warm_server_answers_repeats_from_its_cache() {
    let server =
        sampling_server(7, 1_000).with_result_cache(&ResultCachePolicy::in_memory()).spawn();
    let remote = RemoteBackend::connect(server.addr()).unwrap();
    let circuits = workload();

    let cold: Vec<Vec<f64>> = remote.run_batch(&circuits).into_iter().map(Result::unwrap).collect();
    let stats = server.stats();
    assert_eq!(stats.cache_misses, 3, "the first batch misses everything");
    assert_eq!(stats.cache_hits, 0);

    let warm: Vec<Vec<f64>> = remote.run_batch(&circuits).into_iter().map(Result::unwrap).collect();
    assert_eq!(cold, warm, "cache-served distributions must be byte-identical");

    let stats = server.stats();
    assert_eq!(stats.cache_hits, 3, "the repeat is served entirely from cache");
    assert_eq!(stats.cache_misses, 3, "no new misses on the repeat");
    assert_eq!(stats.cache_shots_saved, 3_000, "three cached circuits at 1000 shots each");
    assert_eq!(stats.circuits_ok, 6, "cache-served circuits still count as answered");

    // the per-connection ledger carries the same counters
    let ledgers = server.shutdown();
    assert_eq!(ledgers.iter().map(|l| l.cache_hits).sum::<u64>(), 3);
    assert_eq!(ledgers.iter().map(|l| l.cache_misses).sum::<u64>(), 3);
    assert_eq!(ledgers.iter().map(|l| l.cache_shots_saved).sum::<u64>(), 3_000);
}

#[test]
fn doubled_shot_requests_cross_the_wire_as_delta_top_ups() {
    let server =
        sampling_server(7, 1_000).with_result_cache(&ResultCachePolicy::in_memory()).spawn();
    let remote = RemoteBackend::connect(server.addr()).unwrap();
    let circuits = workload();

    let low = vec![500u64; 3];
    let high = vec![1_000u64; 3];
    for r in remote.run_batch_with_shots(&circuits, &low) {
        r.unwrap();
    }
    for r in remote.run_batch_with_shots(&circuits, &high) {
        r.unwrap();
    }
    let stats = server.stats();
    assert_eq!(stats.cache_delta_hits, 3, "the doubled request is served as deltas");
    assert_eq!(stats.cache_shots_saved, 3 * 500, "the stored half is not re-executed");

    // the merged write-back upgraded the entries to 1000 shots: the same
    // request again is now a full hit
    for r in remote.run_batch_with_shots(&circuits, &high) {
        r.unwrap();
    }
    let stats = server.stats();
    assert_eq!(stats.cache_hits, 3, "merged entries serve the doubled request fully");
    server.shutdown();
}

#[test]
fn a_persisted_cache_survives_a_server_restart() {
    let path = scratch("restart.snapshot");
    let policy = ResultCachePolicy::persisted(path.to_string_lossy().into_owned());
    let circuits = workload();

    // first server: execute, then shut down — shutdown persists the snapshot
    let first = sampling_server(7, 1_000).with_result_cache(&policy).spawn();
    let remote = RemoteBackend::connect(first.addr()).unwrap();
    let cold: Vec<Vec<f64>> = remote.run_batch(&circuits).into_iter().map(Result::unwrap).collect();
    drop(remote);
    first.shutdown();
    assert!(path.exists(), "shutdown must write the snapshot");

    // second server: same snapshot, but a device with a different seed — it
    // would sample different distributions, so identical output proves the
    // snapshot served every circuit
    let second = sampling_server(999, 1_000).with_result_cache(&policy).spawn();
    let remote = RemoteBackend::connect(second.addr()).unwrap();
    let restored: Vec<Vec<f64>> =
        remote.run_batch(&circuits).into_iter().map(Result::unwrap).collect();
    assert_eq!(cold, restored, "snapshot-served distributions must be byte-identical");

    let stats = second.stats();
    assert_eq!(stats.cache_hits, 3, "the restarted server serves from the snapshot");
    assert_eq!(stats.cache_misses, 0);
    second.shutdown();
    std::fs::remove_file(&path).unwrap();
}
