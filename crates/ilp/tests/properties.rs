//! Property-based tests for the ILP solver: on random small 0-1 models the
//! branch-and-bound result must match brute-force enumeration.

use proptest::prelude::*;
use qrcc_ilp::{solver, LinExpr, Model, SolverConfig};

/// Builds a random small knapsack-like model from the given weights, values
/// and capacity fraction, returning the model and the brute-force optimum.
fn build_and_enumerate(weights: &[u8], values: &[i8], cover: bool) -> (Model, Option<f64>) {
    let n = weights.len();
    let mut model = Model::new();
    let vars: Vec<_> = (0..n).map(|i| model.add_binary(format!("v{i}"))).collect();
    let capacity: f64 = weights.iter().map(|&w| w as f64).sum::<f64>() / 2.0;

    let mut weight_expr = LinExpr::new();
    let mut obj = LinExpr::new();
    for i in 0..n {
        weight_expr.add_term(weights[i] as f64, vars[i]);
        obj.add_term(values[i] as f64, vars[i]);
    }
    if cover {
        model.add_ge(weight_expr, capacity);
    } else {
        model.add_le(weight_expr, capacity);
    }
    model.minimize(obj);

    // Brute force.
    let mut best: Option<f64> = None;
    for mask in 0..(1u32 << n) {
        let assignment: Vec<f64> =
            (0..n).map(|i| if mask & (1 << i) != 0 { 1.0 } else { 0.0 }).collect();
        if model.is_feasible(&assignment, 1e-9) {
            let obj = model.objective_value(&assignment);
            best = Some(best.map_or(obj, |b: f64| b.min(obj)));
        }
    }
    (model, best)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn branch_and_bound_matches_brute_force(
        weights in proptest::collection::vec(1u8..10, 2..8),
        values in proptest::collection::vec(-9i8..10, 2..8),
        cover in any::<bool>(),
    ) {
        let n = weights.len().min(values.len());
        let (model, brute) = build_and_enumerate(&weights[..n], &values[..n], cover);
        let result = solver::solve(&model, &SolverConfig::default());
        match brute {
            Some(best) => {
                let sol = result.expect("solver must find the feasible optimum");
                prop_assert!(sol.is_optimal());
                prop_assert!((sol.objective() - best).abs() < 1e-6,
                    "solver {} vs brute force {}", sol.objective(), best);
                prop_assert!(model.is_feasible(sol.values(), 1e-6));
            }
            None => prop_assert!(result.is_err()),
        }
    }

    #[test]
    fn bit_flip_never_worsens_a_feasible_start(
        weights in proptest::collection::vec(1u8..10, 3..7),
        values in proptest::collection::vec(-9i8..10, 3..7),
    ) {
        let n = weights.len().min(values.len());
        let (model, brute) = build_and_enumerate(&weights[..n], &values[..n], false);
        // The empty assignment is always feasible for the <= capacity model.
        let start = vec![0.0; n];
        prop_assume!(model.is_feasible(&start, 1e-9));
        let start_obj = model.objective_value(&start);
        let (improved, obj) = solver::improve_by_bit_flips(
            &model,
            &start,
            std::time::Duration::from_millis(100),
        );
        prop_assert!(obj <= start_obj + 1e-9);
        prop_assert!(model.is_feasible(&improved, 1e-6));
        if let Some(best) = brute {
            prop_assert!(obj >= best - 1e-6);
        }
    }
}
