//! Branch-and-bound for 0-1 integer programs with LP bounding, warm starts
//! and node/time limits, plus a bit-flip local-search improvement pass.

use crate::simplex::{most_fractional_binary, solve_relaxation, LpStatus};
use crate::{IlpError, Model, Solution, SolveStatus, VarId};
use std::time::{Duration, Instant};

/// Limits and tolerances for [`solve`].
#[derive(Debug, Clone, PartialEq)]
pub struct SolverConfig {
    /// Wall-clock limit for the whole solve.
    pub time_limit: Duration,
    /// Maximum number of branch-and-bound nodes to explore.
    pub max_nodes: u64,
    /// Absolute optimality gap: a node is pruned when its LP bound is within
    /// this distance of the incumbent.
    pub gap_tolerance: f64,
    /// Tolerance used when deciding whether an LP value is integral.
    pub integrality_tolerance: f64,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            time_limit: Duration::from_secs(10),
            max_nodes: 200_000,
            gap_tolerance: 1e-6,
            integrality_tolerance: 1e-6,
        }
    }
}

impl SolverConfig {
    /// A configuration with the given time limit and default tolerances.
    pub fn with_time_limit(time_limit: Duration) -> Self {
        SolverConfig { time_limit, ..SolverConfig::default() }
    }
}

/// Solves a 0-1 (mixed) integer program to optimality or until a limit is
/// reached.
///
/// # Errors
///
/// * [`IlpError::Infeasible`] — the model has no feasible assignment.
/// * [`IlpError::Unbounded`] — the LP relaxation is unbounded.
/// * [`IlpError::LimitReached`] — the limits were hit before any feasible
///   assignment was found (the model may still be feasible).
/// * [`IlpError::UnknownVariable`] — the model references foreign variables.
pub fn solve(model: &Model, config: &SolverConfig) -> Result<Solution, IlpError> {
    solve_with_warm_start(model, config, None)
}

/// Like [`solve`], but seeds the incumbent with a known feasible assignment
/// (e.g. from a domain-specific heuristic), which both guarantees a feasible
/// answer and strengthens pruning.
pub fn solve_with_warm_start(
    model: &Model,
    config: &SolverConfig,
    warm_start: Option<&[f64]>,
) -> Result<Solution, IlpError> {
    model.validate()?;
    let start = Instant::now();
    let tol = config.integrality_tolerance;

    let mut incumbent: Option<Vec<f64>> = None;
    let mut incumbent_obj = f64::INFINITY;
    if let Some(values) = warm_start {
        if model.is_feasible(values, 1e-6) {
            incumbent_obj = model.objective_value(values);
            incumbent = Some(values.to_vec());
        }
    }

    let base_bounds: Vec<(f64, f64)> = model.vars().map(|v| model.bounds(v)).collect();

    /// A branch-and-bound node: the binary fixings accumulated on the path
    /// from the root.
    struct Node {
        fixings: Vec<(VarId, f64)>,
    }

    let mut stack = vec![Node { fixings: Vec::new() }];
    let mut nodes_explored: u64 = 0;
    let mut exhausted = true;

    while let Some(node) = stack.pop() {
        if start.elapsed() > config.time_limit || nodes_explored >= config.max_nodes {
            exhausted = false;
            break;
        }
        nodes_explored += 1;

        let mut bounds = base_bounds.clone();
        for &(var, value) in &node.fixings {
            bounds[var.index()] = (value, value);
        }
        let lp = solve_relaxation(model, &bounds);
        match lp.status {
            LpStatus::Infeasible => continue,
            LpStatus::Unbounded => return Err(IlpError::Unbounded),
            LpStatus::Optimal => {}
        }
        if lp.objective >= incumbent_obj - config.gap_tolerance {
            continue; // cannot improve on the incumbent
        }
        match most_fractional_binary(model, &lp.values) {
            None => {
                // Integral (within tolerance): round binaries exactly and accept.
                let mut values = lp.values.clone();
                for var in model.binary_vars() {
                    values[var.index()] = values[var.index()].round();
                }
                if model.is_feasible(&values, 1e-6) {
                    let obj = model.objective_value(&values);
                    if obj < incumbent_obj {
                        incumbent_obj = obj;
                        incumbent = Some(values);
                    }
                }
            }
            Some((var, _)) => {
                let frac = lp.values[var.index()];
                let first = if frac >= 0.5 { 1.0 } else { 0.0 };
                let second = 1.0 - first;
                // DFS: push the less promising child first so the more
                // promising one is explored next.
                let mut far = node.fixings.clone();
                far.push((var, second));
                stack.push(Node { fixings: far });
                let mut near = node.fixings;
                near.push((var, first));
                stack.push(Node { fixings: near });
            }
        }
        let _ = tol;
    }

    let elapsed_ms = start.elapsed().as_millis();
    match incumbent {
        Some(values) => {
            let status = if exhausted { SolveStatus::Optimal } else { SolveStatus::Feasible };
            Ok(Solution::new(values, incumbent_obj, status, nodes_explored, elapsed_ms))
        }
        None => {
            if exhausted {
                Err(IlpError::Infeasible)
            } else {
                Err(IlpError::LimitReached)
            }
        }
    }
}

/// Improves a feasible assignment by greedy single-bit flips (and keeps only
/// improving, feasible moves) until no flip helps or the time budget runs
/// out. Returns the improved assignment and its objective.
///
/// This is the cheap fallback used on models too large for branch-and-bound.
///
/// # Panics
///
/// Panics if `values.len() != model.num_vars()`.
pub fn improve_by_bit_flips(
    model: &Model,
    values: &[f64],
    time_limit: Duration,
) -> (Vec<f64>, f64) {
    assert_eq!(values.len(), model.num_vars(), "assignment length mismatch");
    let start = Instant::now();
    let mut current = values.to_vec();
    let mut current_obj = model.objective_value(&current);
    let binaries = model.binary_vars();
    let mut improved = true;
    while improved && start.elapsed() < time_limit {
        improved = false;
        for &var in &binaries {
            if start.elapsed() >= time_limit {
                break;
            }
            let old = current[var.index()];
            current[var.index()] = 1.0 - old;
            let obj = model.objective_value(&current);
            if obj < current_obj - 1e-9 && model.is_feasible(&current, 1e-6) {
                current_obj = obj;
                improved = true;
            } else {
                current[var.index()] = old;
            }
        }
    }
    (current, current_obj)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LinExpr;

    fn knapsack_model() -> (Model, Vec<VarId>) {
        // maximise 10a + 13b + 7c + 4d  s.t. 5a + 7b + 4c + 3d <= 10
        let mut m = Model::new();
        let vars: Vec<VarId> = ["a", "b", "c", "d"].iter().map(|n| m.add_binary(*n)).collect();
        let weights = [5.0, 7.0, 4.0, 3.0];
        let values = [10.0, 13.0, 7.0, 4.0];
        let mut weight_expr = LinExpr::new();
        let mut value_expr = LinExpr::new();
        for (i, &v) in vars.iter().enumerate() {
            weight_expr.add_term(weights[i], v);
            value_expr.add_term(-values[i], v);
        }
        m.add_le(weight_expr, 10.0);
        m.minimize(value_expr);
        (m, vars)
    }

    #[test]
    fn knapsack_optimum() {
        let (m, vars) = knapsack_model();
        let sol = solve(&m, &SolverConfig::default()).unwrap();
        assert!(sol.is_optimal());
        // best is b + c (weight 11? no: 7+4=11 > 10) -> check: a+c = 9 -> 17,
        // b+d = 10 -> 17, a+d = 8 -> 14, c+d = 7 -> 11. Optimum = 17.
        assert!((sol.objective() + 17.0).abs() < 1e-6);
        let picked: Vec<bool> = vars.iter().map(|&v| sol.is_one(v)).collect();
        let weight: f64 =
            picked.iter().zip([5.0, 7.0, 4.0, 3.0]).map(|(&p, w)| if p { w } else { 0.0 }).sum();
        assert!(weight <= 10.0 + 1e-9);
    }

    #[test]
    fn set_cover_with_equalities() {
        // choose exactly one of x, y; exactly one of y, z; minimise x+y+z -> y alone
        let mut m = Model::new();
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        let z = m.add_binary("z");
        m.add_ge(LinExpr::new().term(1.0, x).term(1.0, y), 1.0);
        m.add_ge(LinExpr::new().term(1.0, y).term(1.0, z), 1.0);
        m.minimize(LinExpr::new().term(1.0, x).term(1.0, y).term(1.0, z));
        let sol = solve(&m, &SolverConfig::default()).unwrap();
        assert!(sol.is_optimal());
        assert!((sol.objective() - 1.0).abs() < 1e-6);
        assert!(sol.is_one(y));
        assert!(!sol.is_one(x) && !sol.is_one(z));
    }

    #[test]
    fn infeasible_model_reports_error() {
        let mut m = Model::new();
        let x = m.add_binary("x");
        m.add_ge(LinExpr::new().term(1.0, x), 2.0);
        m.minimize(LinExpr::new().term(1.0, x));
        assert_eq!(solve(&m, &SolverConfig::default()), Err(IlpError::Infeasible));
    }

    #[test]
    fn warm_start_is_used_when_limits_are_tiny() {
        let (m, _vars) = knapsack_model();
        // A zero-node budget cannot find anything on its own...
        let config = SolverConfig { max_nodes: 0, ..SolverConfig::default() };
        assert_eq!(solve(&m, &config), Err(IlpError::LimitReached));
        // ...but a warm start is returned as a feasible solution.
        let warm = vec![1.0, 0.0, 1.0, 0.0];
        let sol = solve_with_warm_start(&m, &config, Some(&warm)).unwrap();
        assert_eq!(sol.status(), SolveStatus::Feasible);
        assert!((sol.objective() + 17.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_warm_start_is_ignored() {
        let (m, _vars) = knapsack_model();
        let bad_warm = vec![1.0, 1.0, 1.0, 1.0]; // violates the knapsack
        let sol = solve_with_warm_start(&m, &SolverConfig::default(), Some(&bad_warm)).unwrap();
        assert!(sol.is_optimal());
        assert!((sol.objective() + 17.0).abs() < 1e-6);
    }

    #[test]
    fn mixed_integer_model_with_continuous_variable() {
        // minimise y s.t. y >= 2.5 x, x binary, and x must be 1 because x >= 1.
        let mut m = Model::new();
        let x = m.add_binary("x");
        let y = m.add_continuous("y", 0.0, 10.0);
        m.add_ge(LinExpr::new().term(1.0, x), 1.0);
        m.add_ge(LinExpr::new().term(1.0, y).term(-2.5, x), 0.0);
        m.minimize(LinExpr::new().term(1.0, y));
        let sol = solve(&m, &SolverConfig::default()).unwrap();
        assert!(sol.is_one(x));
        assert!((sol.value(y) - 2.5).abs() < 1e-6);
    }

    #[test]
    fn bit_flip_improvement_finds_better_neighbours() {
        let (m, _) = knapsack_model();
        // start from the empty knapsack
        let start = vec![0.0; 4];
        let (improved, obj) = improve_by_bit_flips(&m, &start, Duration::from_millis(200));
        assert!(obj < 0.0, "local search should pick at least one item");
        assert!(m.is_feasible(&improved, 1e-9));
    }

    #[test]
    fn objective_ties_still_terminate() {
        // Symmetric model with many optima; just check it terminates and is optimal.
        let mut m = Model::new();
        let vars: Vec<VarId> = (0..6).map(|i| m.add_binary(format!("v{i}"))).collect();
        let mut sum = LinExpr::new();
        for &v in &vars {
            sum.add_term(1.0, v);
        }
        m.add_eq(sum, 3.0);
        let mut obj = LinExpr::new();
        for &v in &vars {
            obj.add_term(1.0, v);
        }
        m.minimize(obj);
        let sol = solve(&m, &SolverConfig::default()).unwrap();
        assert!(sol.is_optimal());
        assert!((sol.objective() - 3.0).abs() < 1e-6);
    }
}
