//! A self-contained (mixed) 0-1 integer linear programming substrate.
//!
//! The QRCC paper formulates cutting as an ILP and solves it with Gurobi;
//! Gurobi is proprietary and unavailable offline, so this crate provides the
//! solving substrate from scratch:
//!
//! * [`LinExpr`], [`Model`] — modelling layer (binary / continuous variables,
//!   `≤` / `≥` / `=` constraints, linear objective).
//! * [`simplex`] — a dense two-phase primal simplex for LP relaxations.
//! * [`solver`] — branch-and-bound over binary variables with LP bounding,
//!   warm starts, node/time limits, plus a bit-flip local-search improvement
//!   pass used as a fallback on large models.
//!
//! The solver is not Gurobi-fast, but it is exact on small models and
//! degrades gracefully (feasible-but-maybe-suboptimal answers within a time
//! budget) on large ones, which is what the experiment harness needs.
//!
//! # Example
//!
//! ```rust
//! use qrcc_ilp::{Model, SolverConfig};
//!
//! // maximise x + 2y  s.t.  x + y <= 1  (a tiny set-packing problem)
//! let mut model = Model::new();
//! let x = model.add_binary("x");
//! let y = model.add_binary("y");
//! model.add_le(model.expr().term(1.0, x).term(1.0, y), 1.0);
//! model.minimize(model.expr().term(-1.0, x).term(-2.0, y));
//! let solution = qrcc_ilp::solver::solve(&model, &SolverConfig::default()).unwrap();
//! assert_eq!(solution.value(y).round() as i64, 1);
//! assert_eq!(solution.value(x).round() as i64, 0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod expr;
mod model;
mod solution;

pub mod simplex;
pub mod solver;

pub use expr::{LinExpr, VarId};
pub use model::{ConstraintSense, Model, VarKind};
pub use solution::{Solution, SolveStatus};
pub use solver::SolverConfig;

use std::error::Error;
use std::fmt;

/// Errors produced by the ILP layer.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum IlpError {
    /// The model has no feasible solution.
    Infeasible,
    /// The LP relaxation is unbounded (the objective can decrease without limit).
    Unbounded,
    /// The model references a variable that does not belong to it.
    UnknownVariable {
        /// The offending variable index.
        index: usize,
    },
    /// No feasible solution was found within the configured limits (the model
    /// may still be feasible).
    LimitReached,
}

impl fmt::Display for IlpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IlpError::Infeasible => write!(f, "model is infeasible"),
            IlpError::Unbounded => write!(f, "model is unbounded"),
            IlpError::UnknownVariable { index } => {
                write!(f, "variable {index} does not belong to this model")
            }
            IlpError::LimitReached => {
                write!(f, "no feasible solution found within the solver limits")
            }
        }
    }
}

impl Error for IlpError {}
