use crate::VarId;
use serde::{Deserialize, Serialize};

/// How a solve terminated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SolveStatus {
    /// The returned solution is provably optimal.
    Optimal,
    /// A feasible solution was found but optimality was not proven within the
    /// configured limits (time, node count).
    Feasible,
}

/// A feasible assignment returned by the solver.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Solution {
    values: Vec<f64>,
    objective: f64,
    status: SolveStatus,
    nodes_explored: u64,
    solve_time_ms: u128,
}

impl Solution {
    /// Creates a solution record.
    pub fn new(
        values: Vec<f64>,
        objective: f64,
        status: SolveStatus,
        nodes_explored: u64,
        solve_time_ms: u128,
    ) -> Self {
        Solution { values, objective, status, nodes_explored, solve_time_ms }
    }

    /// The value assigned to `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` does not belong to the solved model.
    pub fn value(&self, var: VarId) -> f64 {
        self.values[var.index()]
    }

    /// Whether a binary variable is set (value rounds to 1).
    pub fn is_one(&self, var: VarId) -> bool {
        self.value(var) > 0.5
    }

    /// The full assignment, indexed by variable id.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The objective value of this assignment.
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// The termination status.
    pub fn status(&self) -> SolveStatus {
        self.status
    }

    /// Whether optimality was proven.
    pub fn is_optimal(&self) -> bool {
        self.status == SolveStatus::Optimal
    }

    /// Number of branch-and-bound nodes explored.
    pub fn nodes_explored(&self) -> u64 {
        self.nodes_explored
    }

    /// Wall-clock solve time in milliseconds.
    pub fn solve_time_ms(&self) -> u128 {
        self.solve_time_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_round_trip() {
        let s = Solution::new(vec![1.0, 0.0, 0.3], -2.5, SolveStatus::Feasible, 42, 17);
        assert_eq!(s.value(VarId(0)), 1.0);
        assert!(s.is_one(VarId(0)));
        assert!(!s.is_one(VarId(1)));
        assert_eq!(s.objective(), -2.5);
        assert!(!s.is_optimal());
        assert_eq!(s.nodes_explored(), 42);
        assert_eq!(s.solve_time_ms(), 17);
        assert_eq!(s.values().len(), 3);
    }
}
