use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of a variable within a [`Model`](crate::Model).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// The raw index of the variable inside its model.
    pub fn index(&self) -> usize {
        self.0
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A linear expression `Σ cᵢ·xᵢ + constant`.
///
/// Built with a consuming builder style so expressions can be assembled
/// inline:
///
/// ```rust
/// use qrcc_ilp::{LinExpr, Model};
///
/// let mut model = Model::new();
/// let x = model.add_binary("x");
/// let y = model.add_binary("y");
/// let expr = LinExpr::new().term(2.0, x).term(-1.0, y).constant(0.5);
/// assert_eq!(expr.coefficient(x), 2.0);
/// assert_eq!(expr.constant_value(), 0.5);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct LinExpr {
    terms: BTreeMap<VarId, f64>,
    constant: f64,
}

impl LinExpr {
    /// The empty expression (0).
    pub fn new() -> Self {
        LinExpr::default()
    }

    /// Adds `coefficient · var` to the expression (accumulating if the
    /// variable already appears).
    pub fn term(mut self, coefficient: f64, var: VarId) -> Self {
        self.add_term(coefficient, var);
        self
    }

    /// Adds a constant offset.
    pub fn constant(mut self, value: f64) -> Self {
        self.constant += value;
        self
    }

    /// In-place version of [`LinExpr::term`].
    pub fn add_term(&mut self, coefficient: f64, var: VarId) {
        if coefficient != 0.0 {
            let entry = self.terms.entry(var).or_insert(0.0);
            *entry += coefficient;
            if *entry == 0.0 {
                self.terms.remove(&var);
            }
        }
    }

    /// In-place constant addition.
    pub fn add_constant(&mut self, value: f64) {
        self.constant += value;
    }

    /// Adds `scale ·` every term of `other` to this expression.
    pub fn add_scaled(&mut self, scale: f64, other: &LinExpr) {
        for (var, coeff) in &other.terms {
            self.add_term(scale * coeff, *var);
        }
        self.constant += scale * other.constant;
    }

    /// The coefficient of `var` (0 if absent).
    pub fn coefficient(&self, var: VarId) -> f64 {
        self.terms.get(&var).copied().unwrap_or(0.0)
    }

    /// The constant offset.
    pub fn constant_value(&self) -> f64 {
        self.constant
    }

    /// Iterator over `(variable, coefficient)` pairs in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, f64)> + '_ {
        self.terms.iter().map(|(v, c)| (*v, *c))
    }

    /// Number of variables with a non-zero coefficient.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether the expression has no variable terms.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Evaluates the expression against an assignment indexed by variable id.
    ///
    /// # Panics
    ///
    /// Panics if a referenced variable index is outside `values`.
    pub fn evaluate(&self, values: &[f64]) -> f64 {
        self.constant + self.terms.iter().map(|(v, c)| c * values[v.0]).sum::<f64>()
    }

    /// The largest variable index referenced, if any.
    pub fn max_var_index(&self) -> Option<usize> {
        self.terms.keys().next_back().map(|v| v.0)
    }
}

impl fmt::Display for LinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (v, c) in &self.terms {
            if first {
                write!(f, "{c}·{v}")?;
                first = false;
            } else if *c >= 0.0 {
                write!(f, " + {c}·{v}")?;
            } else {
                write!(f, " - {}·{v}", -c)?;
            }
        }
        if self.constant != 0.0 || first {
            if first {
                write!(f, "{}", self.constant)?;
            } else if self.constant >= 0.0 {
                write!(f, " + {}", self.constant)?;
            } else {
                write!(f, " - {}", -self.constant)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: usize) -> VarId {
        VarId(i)
    }

    #[test]
    fn builder_accumulates_terms() {
        let e = LinExpr::new().term(1.0, v(0)).term(2.0, v(1)).term(3.0, v(0)).constant(1.5);
        assert_eq!(e.coefficient(v(0)), 4.0);
        assert_eq!(e.coefficient(v(1)), 2.0);
        assert_eq!(e.coefficient(v(9)), 0.0);
        assert_eq!(e.constant_value(), 1.5);
        assert_eq!(e.len(), 2);
    }

    #[test]
    fn zero_coefficients_are_dropped() {
        let e = LinExpr::new().term(2.0, v(0)).term(-2.0, v(0));
        assert!(e.is_empty());
        let e2 = LinExpr::new().term(0.0, v(3));
        assert!(e2.is_empty());
    }

    #[test]
    fn evaluate_substitutes_values() {
        let e = LinExpr::new().term(2.0, v(0)).term(-1.0, v(2)).constant(0.5);
        assert_eq!(e.evaluate(&[1.0, 9.0, 3.0]), 2.0 - 3.0 + 0.5);
    }

    #[test]
    fn add_scaled_combines_expressions() {
        let a = LinExpr::new().term(1.0, v(0)).constant(1.0);
        let mut b = LinExpr::new().term(2.0, v(1));
        b.add_scaled(3.0, &a);
        assert_eq!(b.coefficient(v(0)), 3.0);
        assert_eq!(b.coefficient(v(1)), 2.0);
        assert_eq!(b.constant_value(), 3.0);
    }

    #[test]
    fn display_is_readable() {
        let e = LinExpr::new().term(1.0, v(0)).term(-2.0, v(1)).constant(-1.0);
        let s = e.to_string();
        assert!(s.contains("x0"));
        assert!(s.contains("x1"));
        assert!(s.contains('-'));
        assert_eq!(LinExpr::new().to_string(), "0");
    }

    #[test]
    fn max_var_index_tracks_largest() {
        let e = LinExpr::new().term(1.0, v(4)).term(1.0, v(2));
        assert_eq!(e.max_var_index(), Some(4));
        assert_eq!(LinExpr::new().max_var_index(), None);
    }
}
