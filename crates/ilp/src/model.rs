use crate::{IlpError, LinExpr, VarId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The domain of a model variable.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum VarKind {
    /// A 0/1 variable.
    Binary,
    /// A continuous variable with the given inclusive bounds.
    Continuous {
        /// Lower bound.
        lb: f64,
        /// Upper bound.
        ub: f64,
    },
}

/// The sense of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConstraintSense {
    /// `expr ≤ rhs`
    Le,
    /// `expr ≥ rhs`
    Ge,
    /// `expr = rhs`
    Eq,
}

/// A single linear constraint `expr (≤|≥|=) rhs`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Constraint {
    /// Left-hand-side expression (its constant is folded into the rhs when
    /// the model is solved).
    pub expr: LinExpr,
    /// The constraint sense.
    pub sense: ConstraintSense,
    /// Right-hand side.
    pub rhs: f64,
    /// Optional human-readable label (shown in debug dumps).
    pub label: String,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) struct VarDef {
    pub name: String,
    pub kind: VarKind,
}

/// A (mixed) 0-1 integer linear program: binary and bounded continuous
/// variables, linear constraints, and a linear objective to minimise.
///
/// ```rust
/// use qrcc_ilp::{LinExpr, Model};
///
/// let mut m = Model::new();
/// let x = m.add_binary("x");
/// let y = m.add_binary("y");
/// m.add_ge(LinExpr::new().term(1.0, x).term(1.0, y), 1.0);
/// m.minimize(LinExpr::new().term(3.0, x).term(1.0, y));
/// assert_eq!(m.num_vars(), 2);
/// assert_eq!(m.num_constraints(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Model {
    vars: Vec<VarDef>,
    constraints: Vec<Constraint>,
    objective: LinExpr,
}

impl Model {
    /// An empty model.
    pub fn new() -> Self {
        Model::default()
    }

    /// Adds a binary (0/1) variable and returns its id.
    pub fn add_binary(&mut self, name: impl Into<String>) -> VarId {
        self.vars.push(VarDef { name: name.into(), kind: VarKind::Binary });
        VarId(self.vars.len() - 1)
    }

    /// Adds a continuous variable with bounds `[lb, ub]` and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `lb > ub` or either bound is not finite.
    pub fn add_continuous(&mut self, name: impl Into<String>, lb: f64, ub: f64) -> VarId {
        assert!(lb.is_finite() && ub.is_finite() && lb <= ub, "invalid bounds [{lb}, {ub}]");
        self.vars.push(VarDef { name: name.into(), kind: VarKind::Continuous { lb, ub } });
        VarId(self.vars.len() - 1)
    }

    /// A fresh empty expression (convenience so call sites do not need to
    /// import [`LinExpr`]).
    pub fn expr(&self) -> LinExpr {
        LinExpr::new()
    }

    /// Adds the constraint `expr ≤ rhs`.
    pub fn add_le(&mut self, expr: LinExpr, rhs: f64) {
        self.add_constraint(expr, ConstraintSense::Le, rhs, "");
    }

    /// Adds the constraint `expr ≥ rhs`.
    pub fn add_ge(&mut self, expr: LinExpr, rhs: f64) {
        self.add_constraint(expr, ConstraintSense::Ge, rhs, "");
    }

    /// Adds the constraint `expr = rhs`.
    pub fn add_eq(&mut self, expr: LinExpr, rhs: f64) {
        self.add_constraint(expr, ConstraintSense::Eq, rhs, "");
    }

    /// Adds a constraint with an explicit sense and label.
    pub fn add_constraint(
        &mut self,
        expr: LinExpr,
        sense: ConstraintSense,
        rhs: f64,
        label: impl Into<String>,
    ) {
        self.constraints.push(Constraint { expr, sense, rhs, label: label.into() });
    }

    /// Sets the objective to minimise.
    pub fn minimize(&mut self, objective: LinExpr) {
        self.objective = objective;
    }

    /// Sets the objective to maximise (stored internally as minimisation of
    /// the negated expression).
    pub fn maximize(&mut self, objective: LinExpr) {
        let mut negated = LinExpr::new();
        negated.add_scaled(-1.0, &objective);
        self.objective = negated;
    }

    /// The minimisation objective.
    pub fn objective(&self) -> &LinExpr {
        &self.objective
    }

    /// The constraints.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// The kind of a variable.
    ///
    /// # Panics
    ///
    /// Panics if `var` does not belong to this model.
    pub fn var_kind(&self, var: VarId) -> VarKind {
        self.vars[var.0].kind
    }

    /// The name of a variable.
    ///
    /// # Panics
    ///
    /// Panics if `var` does not belong to this model.
    pub fn var_name(&self, var: VarId) -> &str {
        &self.vars[var.0].name
    }

    /// All variable ids of the model.
    pub fn vars(&self) -> impl Iterator<Item = VarId> + '_ {
        (0..self.vars.len()).map(VarId)
    }

    /// The ids of all binary variables.
    pub fn binary_vars(&self) -> Vec<VarId> {
        self.vars
            .iter()
            .enumerate()
            .filter_map(
                |(i, d)| if matches!(d.kind, VarKind::Binary) { Some(VarId(i)) } else { None },
            )
            .collect()
    }

    /// The lower and upper bound of a variable's domain.
    pub fn bounds(&self, var: VarId) -> (f64, f64) {
        match self.vars[var.0].kind {
            VarKind::Binary => (0.0, 1.0),
            VarKind::Continuous { lb, ub } => (lb, ub),
        }
    }

    /// Validates that every constraint and the objective reference only
    /// variables belonging to this model.
    ///
    /// # Errors
    ///
    /// Returns [`IlpError::UnknownVariable`] for the first out-of-range
    /// variable found.
    pub fn validate(&self) -> Result<(), IlpError> {
        let check = |expr: &LinExpr| -> Result<(), IlpError> {
            if let Some(max) = expr.max_var_index() {
                if max >= self.vars.len() {
                    return Err(IlpError::UnknownVariable { index: max });
                }
            }
            Ok(())
        };
        check(&self.objective)?;
        for c in &self.constraints {
            check(&c.expr)?;
        }
        Ok(())
    }

    /// Checks whether an assignment satisfies every constraint and every
    /// variable domain within tolerance `tol`.
    pub fn is_feasible(&self, values: &[f64], tol: f64) -> bool {
        if values.len() != self.vars.len() {
            return false;
        }
        for (i, def) in self.vars.iter().enumerate() {
            let v = values[i];
            let (lb, ub) = match def.kind {
                VarKind::Binary => (0.0, 1.0),
                VarKind::Continuous { lb, ub } => (lb, ub),
            };
            if v < lb - tol || v > ub + tol {
                return false;
            }
            if matches!(def.kind, VarKind::Binary) && (v - v.round()).abs() > tol {
                return false;
            }
        }
        for c in &self.constraints {
            let lhs = c.expr.evaluate(values);
            let ok = match c.sense {
                ConstraintSense::Le => lhs <= c.rhs + tol,
                ConstraintSense::Ge => lhs >= c.rhs - tol,
                ConstraintSense::Eq => (lhs - c.rhs).abs() <= tol,
            };
            if !ok {
                return false;
            }
        }
        true
    }

    /// Evaluates the objective for an assignment.
    pub fn objective_value(&self, values: &[f64]) -> f64 {
        self.objective.evaluate(values)
    }
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "minimize {}", self.objective)?;
        writeln!(f, "subject to")?;
        for c in &self.constraints {
            let sense = match c.sense {
                ConstraintSense::Le => "<=",
                ConstraintSense::Ge => ">=",
                ConstraintSense::Eq => "=",
            };
            writeln!(f, "  {} {} {}   {}", c.expr, sense, c.rhs, c.label)?;
        }
        writeln!(f, "{} variables ({} binary)", self.num_vars(), self.binary_vars().len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn building_a_model() {
        let mut m = Model::new();
        let x = m.add_binary("x");
        let y = m.add_continuous("y", 0.0, 5.0);
        m.add_le(LinExpr::new().term(1.0, x).term(1.0, y), 3.0);
        m.minimize(LinExpr::new().term(-1.0, y));
        assert_eq!(m.num_vars(), 2);
        assert_eq!(m.num_constraints(), 1);
        assert_eq!(m.bounds(x), (0.0, 1.0));
        assert_eq!(m.bounds(y), (0.0, 5.0));
        assert_eq!(m.var_name(x), "x");
        assert_eq!(m.binary_vars(), vec![x]);
        assert!(m.validate().is_ok());
    }

    #[test]
    fn maximize_negates_objective() {
        let mut m = Model::new();
        let x = m.add_binary("x");
        m.maximize(LinExpr::new().term(2.0, x));
        assert_eq!(m.objective().coefficient(x), -2.0);
    }

    #[test]
    fn feasibility_checks_domains_and_constraints() {
        let mut m = Model::new();
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        m.add_ge(LinExpr::new().term(1.0, x).term(1.0, y), 1.0);
        assert!(m.is_feasible(&[1.0, 0.0], 1e-9));
        assert!(!m.is_feasible(&[0.0, 0.0], 1e-9)); // violates constraint
        assert!(!m.is_feasible(&[0.5, 1.0], 1e-9)); // fractional binary
        assert!(!m.is_feasible(&[2.0, 0.0], 1e-9)); // out of domain
        assert!(!m.is_feasible(&[1.0], 1e-9)); // wrong length
    }

    #[test]
    fn validate_detects_foreign_variables() {
        let mut m = Model::new();
        let _x = m.add_binary("x");
        let mut other = Model::new();
        let _a = other.add_binary("a");
        let b = other.add_binary("b");
        m.add_le(LinExpr::new().term(1.0, b), 1.0);
        assert_eq!(m.validate(), Err(IlpError::UnknownVariable { index: 1 }));
    }

    #[test]
    #[should_panic(expected = "invalid bounds")]
    fn continuous_bounds_must_be_ordered() {
        let mut m = Model::new();
        m.add_continuous("bad", 2.0, 1.0);
    }

    #[test]
    fn display_contains_objective_and_constraints() {
        let mut m = Model::new();
        let x = m.add_binary("x");
        m.add_eq(LinExpr::new().term(1.0, x), 1.0);
        m.minimize(LinExpr::new().term(1.0, x));
        let text = m.to_string();
        assert!(text.contains("minimize"));
        assert!(text.contains("="));
    }
}
