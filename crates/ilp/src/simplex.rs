//! Dense two-phase primal simplex for LP relaxations.
//!
//! This is the bounding engine of the branch-and-bound solver. It is a
//! straightforward tableau implementation: variables are shifted to have a
//! zero lower bound, finite upper bounds become explicit rows, `≥`/`=` rows
//! get artificial variables, and a phase-1 / phase-2 pass solves the program.
//! Dantzig pricing is used with a Bland's-rule fallback to guarantee
//! termination.

use crate::{ConstraintSense, Model, VarId};

/// Termination status of an LP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpStatus {
    /// An optimal basic solution was found.
    Optimal,
    /// The constraints are inconsistent.
    Infeasible,
    /// The objective is unbounded below.
    Unbounded,
}

/// Result of an LP relaxation solve.
#[derive(Debug, Clone, PartialEq)]
pub struct LpSolution {
    /// Termination status.
    pub status: LpStatus,
    /// Values of the model's variables (original, unshifted domain). Empty
    /// unless `status == Optimal`.
    pub values: Vec<f64>,
    /// Objective value (meaningful only when `status == Optimal`).
    pub objective: f64,
    /// Number of simplex pivots performed across both phases.
    pub pivots: u64,
}

const EPS: f64 = 1e-9;

/// Solves the LP relaxation of `model` with per-variable bounds
/// `var_bounds[i] = (lb, ub)` replacing the variables' own domains (used by
/// branch-and-bound to fix binaries).
///
/// Integrality is ignored; binary variables are treated as continuous within
/// their bounds.
///
/// # Panics
///
/// Panics if `var_bounds.len() != model.num_vars()` or if a bound pair is
/// inverted.
pub fn solve_relaxation(model: &Model, var_bounds: &[(f64, f64)]) -> LpSolution {
    assert_eq!(var_bounds.len(), model.num_vars(), "bounds length mismatch");
    for (i, (lb, ub)) in var_bounds.iter().enumerate() {
        assert!(lb <= ub, "inverted bounds for variable {i}: [{lb}, {ub}]");
    }
    Tableau::build(model, var_bounds).solve()
}

/// Convenience wrapper: solve the relaxation with the model's own bounds.
pub fn solve_model_relaxation(model: &Model) -> LpSolution {
    let bounds: Vec<(f64, f64)> = model.vars().map(|v| model.bounds(v)).collect();
    solve_relaxation(model, &bounds)
}

struct Tableau {
    /// rows x cols dense tableau; last column is the RHS.
    data: Vec<f64>,
    rows: usize,
    cols: usize,
    /// basis[r] = column index of the basic variable of row r.
    basis: Vec<usize>,
    /// Column index of each free (non-fixed) structural variable.
    free_vars: Vec<usize>,
    /// Per original variable: either Fixed(value) or Free(slot index into free_vars).
    var_map: Vec<VarState>,
    /// Lower bound shift per free variable (indexed by slot).
    shifts: Vec<f64>,
    num_structural: usize,
    num_artificial: usize,
    artificial_start: usize,
    obj_constant: f64,
    objective: Vec<f64>,
    pivots: u64,
}

#[derive(Clone, Copy)]
enum VarState {
    Fixed(f64),
    Free(usize),
}

impl Tableau {
    fn build(model: &Model, var_bounds: &[(f64, f64)]) -> Self {
        // Identify fixed variables and allocate columns for free ones.
        let mut var_map = Vec::with_capacity(model.num_vars());
        let mut free_vars = Vec::new();
        let mut shifts = Vec::new();
        for (i, &(lb, ub)) in var_bounds.iter().enumerate() {
            if (ub - lb).abs() <= EPS {
                var_map.push(VarState::Fixed(lb));
            } else {
                var_map.push(VarState::Free(free_vars.len()));
                free_vars.push(i);
                shifts.push(lb);
            }
        }
        let num_structural = free_vars.len();

        // Assemble rows: original constraints plus upper-bound rows for free
        // variables with finite width.
        struct Row {
            coeffs: Vec<f64>, // length num_structural
            sense: ConstraintSense,
            rhs: f64,
        }
        let mut rows: Vec<Row> = Vec::new();
        for c in model.constraints() {
            let mut coeffs = vec![0.0; num_structural];
            let mut rhs = c.rhs - c.expr.constant_value();
            for (var, coef) in c.expr.iter() {
                match var_map[var.index()] {
                    VarState::Fixed(v) => rhs -= coef * v,
                    VarState::Free(slot) => {
                        coeffs[slot] += coef;
                        rhs -= coef * shifts[slot];
                    }
                }
            }
            rows.push(Row { coeffs, sense: c.sense, rhs });
        }
        for (slot, &orig) in free_vars.iter().enumerate() {
            let (lb, ub) = var_bounds[orig];
            let width = ub - lb;
            let mut coeffs = vec![0.0; num_structural];
            coeffs[slot] = 1.0;
            rows.push(Row { coeffs, sense: ConstraintSense::Le, rhs: width });
        }

        // Objective over free variables (shifted); constant collects fixed
        // and shifted contributions.
        let mut objective = vec![0.0; num_structural];
        let mut obj_constant = model.objective().constant_value();
        for (var, coef) in model.objective().iter() {
            match var_map[var.index()] {
                VarState::Fixed(v) => obj_constant += coef * v,
                VarState::Free(slot) => {
                    objective[slot] += coef;
                    obj_constant += coef * shifts[slot];
                }
            }
        }

        // Count slack and artificial columns.
        let mut num_slack = 0usize;
        let mut num_artificial = 0usize;
        for row in &rows {
            // normalise to rhs >= 0 later; slack layout depends on sense
            match row.sense {
                ConstraintSense::Le | ConstraintSense::Ge => num_slack += 1,
                ConstraintSense::Eq => {}
            }
            num_artificial += 1; // allocate one per row; unused ones stay zero
        }
        let slack_start = num_structural;
        let artificial_start = slack_start + num_slack;
        let cols = artificial_start + num_artificial + 1; // +1 for RHS
        let nrows = rows.len();

        let mut data = vec![0.0; nrows * cols];
        let mut basis = vec![0usize; nrows];
        let mut slack_idx = 0usize;

        for (r, row) in rows.iter().enumerate() {
            let mut coeffs = row.coeffs.clone();
            let mut rhs = row.rhs;
            let mut sense = row.sense;
            if rhs < 0.0 {
                for c in &mut coeffs {
                    *c = -*c;
                }
                rhs = -rhs;
                sense = match sense {
                    ConstraintSense::Le => ConstraintSense::Ge,
                    ConstraintSense::Ge => ConstraintSense::Le,
                    ConstraintSense::Eq => ConstraintSense::Eq,
                };
            }
            let base = r * cols;
            for (j, &v) in coeffs.iter().enumerate() {
                data[base + j] = v;
            }
            data[base + cols - 1] = rhs;
            match sense {
                ConstraintSense::Le => {
                    data[base + slack_start + slack_idx] = 1.0;
                    basis[r] = slack_start + slack_idx;
                    slack_idx += 1;
                }
                ConstraintSense::Ge => {
                    data[base + slack_start + slack_idx] = -1.0;
                    slack_idx += 1;
                    data[base + artificial_start + r] = 1.0;
                    basis[r] = artificial_start + r;
                }
                ConstraintSense::Eq => {
                    data[base + artificial_start + r] = 1.0;
                    basis[r] = artificial_start + r;
                }
            }
        }

        Tableau {
            data,
            rows: nrows,
            cols,
            basis,
            free_vars,
            var_map,
            shifts,
            num_structural,
            num_artificial,
            artificial_start,
            obj_constant,
            objective,
            pivots: 0,
        }
    }

    #[inline]
    fn at(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    fn pivot(&mut self, pivot_row: usize, pivot_col: usize) {
        let cols = self.cols;
        let pivot_value = self.at(pivot_row, pivot_col);
        debug_assert!(pivot_value.abs() > EPS);
        let inv = 1.0 / pivot_value;
        let pr_base = pivot_row * cols;
        for c in 0..cols {
            self.data[pr_base + c] *= inv;
        }
        for r in 0..self.rows {
            if r == pivot_row {
                continue;
            }
            let factor = self.at(r, pivot_col);
            if factor.abs() <= EPS {
                continue;
            }
            let r_base = r * cols;
            for c in 0..cols {
                self.data[r_base + c] -= factor * self.data[pr_base + c];
            }
        }
        self.basis[pivot_row] = pivot_col;
        self.pivots += 1;
    }

    /// Runs simplex iterations minimising `cost` (length = cols-1, i.e.
    /// excludes the RHS column). Returns `None` when unbounded.
    fn run_phase(&mut self, cost: &[f64], allow_cols: usize) -> Option<()> {
        // reduced costs maintained implicitly: z_j - c_j computed on demand
        // via the basis. To keep the implementation simple we recompute the
        // multiplier vector each iteration from the basic costs.
        let max_iterations = 50_000 + 50 * (self.rows as u64 + self.cols as u64);
        let mut iterations: u64 = 0;
        loop {
            iterations += 1;
            if iterations > max_iterations {
                // Extremely unlikely; treat as converged to avoid hanging.
                return Some(());
            }
            let use_bland = iterations > 5_000;

            // reduced cost for column j: c_j - sum_r cost[basis[r]] * a[r][j]
            let basic_costs: Vec<f64> = self.basis.iter().map(|&b| cost[b]).collect();
            let mut entering: Option<usize> = None;
            let mut best = -EPS;
            for (j, &cj) in cost.iter().enumerate().take(allow_cols) {
                // skip basic columns quickly
                if self.basis.contains(&j) {
                    continue;
                }
                let mut reduced = cj;
                for (r, &bc) in basic_costs.iter().enumerate() {
                    let a = self.at(r, j);
                    if a != 0.0 {
                        reduced -= bc * a;
                    }
                }
                if reduced < best {
                    if use_bland {
                        entering = Some(j);
                        break;
                    }
                    best = reduced;
                    entering = Some(j);
                }
            }
            let Some(col) = entering else {
                return Some(());
            };

            // Ratio test.
            let mut leaving: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for r in 0..self.rows {
                let a = self.at(r, col);
                if a > EPS {
                    let ratio = self.at(r, self.cols - 1) / a;
                    if ratio < best_ratio - EPS
                        || (use_bland
                            && (ratio - best_ratio).abs() <= EPS
                            && leaving.map(|lr| self.basis[r] < self.basis[lr]).unwrap_or(false))
                    {
                        best_ratio = ratio;
                        leaving = Some(r);
                    }
                }
            }
            let Some(row) = leaving else {
                return None; // unbounded in this direction
            };
            self.pivot(row, col);
        }
    }

    fn solve(mut self) -> LpSolution {
        let rhs_col = self.cols - 1;
        let total_cols = self.cols - 1;

        // Phase 1: minimise sum of artificial variables.
        if self.num_artificial > 0 {
            let mut phase1_cost = vec![0.0; total_cols];
            let artificial = self.artificial_start..self.artificial_start + self.num_artificial;
            for slot in &mut phase1_cost[artificial] {
                *slot = 1.0;
            }
            if self.run_phase(&phase1_cost, total_cols).is_none() {
                // Phase 1 objective is bounded below by zero, so this cannot
                // happen; treat defensively as infeasible.
                return LpSolution {
                    status: LpStatus::Infeasible,
                    values: Vec::new(),
                    objective: 0.0,
                    pivots: self.pivots,
                };
            }
            // Check artificial sum.
            let artificial_sum: f64 = self
                .basis
                .iter()
                .enumerate()
                .filter(|(_, &b)| b >= self.artificial_start)
                .map(|(r, _)| self.at(r, rhs_col))
                .sum();
            if artificial_sum > 1e-6 {
                return LpSolution {
                    status: LpStatus::Infeasible,
                    values: Vec::new(),
                    objective: 0.0,
                    pivots: self.pivots,
                };
            }
            // Drive any remaining basic artificials out of the basis where possible.
            for r in 0..self.rows {
                if self.basis[r] >= self.artificial_start && self.at(r, rhs_col).abs() <= 1e-7 {
                    if let Some(col) =
                        (0..self.artificial_start).find(|&j| self.at(r, j).abs() > 1e-7)
                    {
                        self.pivot(r, col);
                    }
                }
            }
        }

        // Phase 2: minimise the true objective, artificial columns excluded.
        let mut phase2_cost = vec![0.0; total_cols];
        phase2_cost[..self.num_structural].copy_from_slice(&self.objective);
        if self.run_phase(&phase2_cost, self.artificial_start).is_none() {
            return LpSolution {
                status: LpStatus::Unbounded,
                values: Vec::new(),
                objective: f64::NEG_INFINITY,
                pivots: self.pivots,
            };
        }

        // Extract solution.
        let mut shifted = vec![0.0; self.num_structural];
        for r in 0..self.rows {
            if self.basis[r] < self.num_structural {
                shifted[self.basis[r]] = self.at(r, rhs_col);
            }
        }
        let mut values = vec![0.0; self.var_map.len()];
        for (i, state) in self.var_map.iter().enumerate() {
            values[i] = match state {
                VarState::Fixed(v) => *v,
                VarState::Free(slot) => shifted[*slot] + self.shifts[*slot],
            };
        }
        let _ = &self.free_vars;
        let objective = self.obj_constant
            + self.objective.iter().zip(&shifted).map(|(c, x)| c * x).sum::<f64>();
        LpSolution { status: LpStatus::Optimal, values, objective, pivots: self.pivots }
    }
}

/// Returns the most fractional binary variable of an LP solution, if any
/// (used for branching decisions).
pub fn most_fractional_binary(model: &Model, values: &[f64]) -> Option<(VarId, f64)> {
    let mut best: Option<(VarId, f64)> = None;
    for var in model.binary_vars() {
        let v = values[var.index()];
        let frac = (v - v.round()).abs();
        if frac > 1e-6 {
            let distance_to_half = (v - 0.5).abs();
            match best {
                Some((_, d)) if d <= distance_to_half => {}
                _ => best = Some((var, distance_to_half)),
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LinExpr;

    #[test]
    fn simple_lp_optimum_at_vertex() {
        // minimise -x - 2y  s.t. x + y <= 4, x <= 3, y <= 2, x,y >= 0
        let mut m = Model::new();
        let x = m.add_continuous("x", 0.0, 3.0);
        let y = m.add_continuous("y", 0.0, 2.0);
        m.add_le(LinExpr::new().term(1.0, x).term(1.0, y), 4.0);
        m.minimize(LinExpr::new().term(-1.0, x).term(-2.0, y));
        let sol = solve_model_relaxation(&m);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.values[x.index()] - 2.0).abs() < 1e-6);
        assert!((sol.values[y.index()] - 2.0).abs() < 1e-6);
        assert!((sol.objective + 6.0).abs() < 1e-6);
    }

    #[test]
    fn equality_constraints_are_respected() {
        // minimise x + y  s.t. x + y = 2, x - y = 0
        let mut m = Model::new();
        let x = m.add_continuous("x", 0.0, 10.0);
        let y = m.add_continuous("y", 0.0, 10.0);
        m.add_eq(LinExpr::new().term(1.0, x).term(1.0, y), 2.0);
        m.add_eq(LinExpr::new().term(1.0, x).term(-1.0, y), 0.0);
        m.minimize(LinExpr::new().term(1.0, x).term(1.0, y));
        let sol = solve_model_relaxation(&m);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.values[x.index()] - 1.0).abs() < 1e-6);
        assert!((sol.values[y.index()] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_program_is_detected() {
        let mut m = Model::new();
        let x = m.add_continuous("x", 0.0, 1.0);
        m.add_ge(LinExpr::new().term(1.0, x), 2.0);
        m.minimize(LinExpr::new().term(1.0, x));
        let sol = solve_model_relaxation(&m);
        assert_eq!(sol.status, LpStatus::Infeasible);
    }

    #[test]
    fn binary_relaxation_can_be_fractional() {
        // minimise -x - y s.t. x + y <= 1 gives x + y = 1 on the relaxation;
        // with a symmetric objective a vertex solution sets one of them to 1.
        let mut m = Model::new();
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        m.add_le(LinExpr::new().term(2.0, x).term(2.0, y), 1.0);
        m.minimize(LinExpr::new().term(-1.0, x).term(-1.0, y));
        let sol = solve_model_relaxation(&m);
        assert_eq!(sol.status, LpStatus::Optimal);
        let total = sol.values[x.index()] + sol.values[y.index()];
        assert!((total - 0.5).abs() < 1e-6);
        assert!(most_fractional_binary(&m, &sol.values).is_some());
    }

    #[test]
    fn fixed_variables_are_substituted() {
        let mut m = Model::new();
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        m.add_ge(LinExpr::new().term(1.0, x).term(1.0, y), 1.0);
        m.minimize(LinExpr::new().term(5.0, x).term(1.0, y));
        // Fix x = 1; optimal y should be 0 with objective 5.
        let sol = solve_relaxation(&m, &[(1.0, 1.0), (0.0, 1.0)]);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.values[x.index()] - 1.0).abs() < 1e-9);
        assert!(sol.values[y.index()].abs() < 1e-6);
        assert!((sol.objective - 5.0).abs() < 1e-6);
    }

    #[test]
    fn negative_rhs_rows_are_normalised() {
        // x >= 1 written as -x <= -1
        let mut m = Model::new();
        let x = m.add_continuous("x", 0.0, 5.0);
        m.add_le(LinExpr::new().term(-1.0, x), -1.0);
        m.minimize(LinExpr::new().term(1.0, x));
        let sol = solve_model_relaxation(&m);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.values[x.index()] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn objective_constant_is_included() {
        let mut m = Model::new();
        let x = m.add_continuous("x", 0.0, 1.0);
        m.minimize(LinExpr::new().term(1.0, x).constant(10.0));
        let sol = solve_model_relaxation(&m);
        assert!((sol.objective - 10.0).abs() < 1e-6);
    }

    #[test]
    fn most_fractional_binary_ignores_integral_values() {
        let mut m = Model::new();
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        assert!(most_fractional_binary(&m, &[1.0, 0.0]).is_none());
        let pick = most_fractional_binary(&m, &[1.0, 0.4]).unwrap();
        assert_eq!(pick.0, y);
        let _ = x;
    }
}
