use std::error::Error;
use std::fmt;

/// Errors produced by the simulator and simulated devices.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// The circuit needs more qubits than the device (or simulator limit) offers.
    TooManyQubits {
        /// Qubits required by the circuit.
        required: usize,
        /// Qubits available.
        available: usize,
    },
    /// A state-vector operation was asked to run a non-unitary circuit.
    NonUnitaryCircuit {
        /// Index of the offending operation.
        index: usize,
    },
    /// The device does not support mid-circuit measurement / reset but the
    /// circuit requires it.
    MidCircuitUnsupported,
    /// The circuit contains no measurements and implicit measurement was
    /// disabled.
    NothingToMeasure,
    /// An observable's qubit count does not match the circuit.
    ObservableWidthMismatch {
        /// Observable width.
        observable: usize,
        /// Circuit width.
        circuit: usize,
    },
    /// The requested number of shots was zero.
    ZeroShots,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::TooManyQubits { required, available } => {
                write!(f, "circuit needs {required} qubits but only {available} are available")
            }
            SimError::NonUnitaryCircuit { index } => {
                write!(
                    f,
                    "operation {index} is not unitary; use a trajectory or branching executor"
                )
            }
            SimError::MidCircuitUnsupported => {
                write!(f, "device does not support mid-circuit measurement or reset")
            }
            SimError::NothingToMeasure => write!(f, "circuit contains no measurements"),
            SimError::ObservableWidthMismatch { observable, circuit } => {
                write!(f, "observable acts on {observable} qubits but the circuit has {circuit}")
            }
            SimError::ZeroShots => write!(f, "shot count must be positive"),
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_nonempty() {
        let errors = [
            SimError::TooManyQubits { required: 5, available: 3 },
            SimError::NonUnitaryCircuit { index: 2 },
            SimError::MidCircuitUnsupported,
            SimError::NothingToMeasure,
            SimError::ObservableWidthMismatch { observable: 3, circuit: 2 },
            SimError::ZeroShots,
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }
}
