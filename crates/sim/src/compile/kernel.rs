//! The flat kernel IR and its amplitude-sweep executors.
//!
//! Each [`Kernel`] is one pass over the state vector. Sweeps are serial below
//! [`PAR_THRESHOLD`] amplitudes (or whenever rayon would run single-threaded)
//! and rayon-chunked above it; every chunking scheme partitions the index
//! space into disjoint write sets, so results are bit-identical regardless of
//! thread count.

use crate::matrix::{Matrix2, Matrix4};
use crate::Complex;
use rayon::prelude::*;

/// States with at least this many amplitudes run their sweeps in parallel;
/// smaller states (the common per-branch / per-trajectory case) stay serial
/// to avoid fan-out overhead.
pub const PAR_THRESHOLD: usize = 1 << 16;

/// Amplitudes per parallel work item — sized so a chunk's reads and writes
/// stay within L1/L2 (8192 amplitudes × 16 bytes = 128 KiB per half-pair).
const CHUNK: usize = 1 << 13;

/// Quad base-indices per parallel work item for two-qubit sweeps (each quad
/// touches 4 amplitudes, so this also bounds the working set).
const QUAD_CHUNK: usize = 1 << 11;

/// One compiled operation: a single sweep over the amplitude array.
///
/// Unitary kernels are applied with [`Kernel::apply`]; `Measure` / `Reset`
/// are *control kernels* — they mark where an executor must branch, sample
/// or project, and carry the index of their source [`Operation`]
/// (relative to the compiled operation slice) for error parity with the
/// interpreted path.
///
/// [`Operation`]: qrcc_circuit::Operation
#[derive(Debug, Clone, PartialEq)]
pub enum Kernel {
    /// A general fused 2×2 matrix on one qubit (gather/scatter pair sweep).
    Unary {
        /// Target qubit index.
        qubit: usize,
        /// Fused 2×2 unitary.
        m: Matrix2,
    },
    /// A diagonal 2×2: multiply-only sweep, no pair gathering.
    Diag1 {
        /// Target qubit index.
        qubit: usize,
        /// Phase applied where the qubit bit is 0.
        p0: Complex,
        /// Phase applied where the qubit bit is 1.
        p1: Complex,
    },
    /// An anti-diagonal 2×2 (X-like): a pair swap with two coefficients.
    Flip1 {
        /// Target qubit index.
        qubit: usize,
        /// Coefficient of the |1⟩ amplitude landing on |0⟩ (matrix entry m01).
        c01: Complex,
        /// Coefficient of the |0⟩ amplitude landing on |1⟩ (matrix entry m10).
        c10: Complex,
    },
    /// A diagonal two-qubit gate (CZ / CPhase / RZZ): multiply-only sweep.
    Diag2 {
        /// Bit mask of the first listed qubit (the matrix high bit).
        qa: usize,
        /// Bit mask of the second listed qubit (the matrix low bit).
        qb: usize,
        /// Phases indexed by `(bit_a << 1) | bit_b`.
        p: [Complex; 4],
    },
    /// A pure index permutation exchanging the two qubits' bits (SWAP).
    SwapPerm {
        /// First qubit index.
        qa: usize,
        /// Second qubit index.
        qb: usize,
    },
    /// A controlled flip (CX / CY): acts only where the control bit is set.
    CFlip {
        /// Control qubit index.
        control: usize,
        /// Target qubit index.
        target: usize,
        /// Coefficient of the target-|1⟩ amplitude landing on target-|0⟩.
        c01: Complex,
        /// Coefficient of the target-|0⟩ amplitude landing on target-|1⟩.
        c10: Complex,
    },
    /// A general two-qubit gate: cache-blocked 4-amplitude sweep.
    Two {
        /// First listed qubit index (matrix high bit).
        qa: usize,
        /// Second listed qubit index (matrix low bit).
        qb: usize,
        /// Dense 4×4 unitary over basis `(bit_a << 1) | bit_b`.
        m: Matrix4,
    },
    /// Control kernel: projective measurement into a classical bit.
    Measure {
        /// Measured qubit index.
        qubit: usize,
        /// Classical bit receiving the outcome.
        clbit: usize,
        /// Index of the source operation in the compiled slice.
        op_index: usize,
    },
    /// Control kernel: reset the qubit to |0⟩.
    Reset {
        /// Reset qubit index.
        qubit: usize,
        /// Index of the source operation in the compiled slice.
        op_index: usize,
    },
}

impl Kernel {
    /// Whether this is a `Measure` / `Reset` control kernel (an executor must
    /// branch or sample here; [`Kernel::apply`] would panic).
    pub fn is_control(&self) -> bool {
        matches!(self, Kernel::Measure { .. } | Kernel::Reset { .. })
    }

    /// Applies a unitary kernel to the amplitude array in place.
    ///
    /// # Panics
    ///
    /// Panics on `Measure` / `Reset` control kernels — those require an
    /// executor that owns branching or sampling (see
    /// [`FramedProgram`](super::FramedProgram)).
    pub fn apply(&self, amps: &mut [Complex]) {
        match *self {
            Kernel::Unary { qubit, m } => for_each_pair(amps, qubit, move |a, b| {
                let (x, y) = (*a, *b);
                *a = m[0][0] * x + m[0][1] * y;
                *b = m[1][0] * x + m[1][1] * y;
            }),
            Kernel::Diag1 { qubit, p0, p1 } => for_each_pair(amps, qubit, move |a, b| {
                *a = p0 * *a;
                *b = p1 * *b;
            }),
            Kernel::Flip1 { qubit, c01, c10 } => for_each_pair(amps, qubit, move |a, b| {
                let x = *a;
                *a = c01 * *b;
                *b = c10 * x;
            }),
            Kernel::Diag2 { qa, qb, p } => {
                let (ba, bb) = (1usize << qa, 1usize << qb);
                for_each_indexed(amps, move |i, a| {
                    let idx = (usize::from(i & ba != 0) << 1) | usize::from(i & bb != 0);
                    *a = p[idx] * *a;
                });
            }
            Kernel::SwapPerm { qa, qb } => for_each_quad(amps, qa, qb, |_a00, a01, a10, _a11| {
                std::mem::swap(a01, a10);
            }),
            Kernel::CFlip { control, target, c01, c10 } => {
                for_each_quad(amps, control, target, move |_a00, _a01, a10, a11| {
                    let x = *a10;
                    *a10 = c01 * *a11;
                    *a11 = c10 * x;
                })
            }
            Kernel::Two { qa, qb, m } => for_each_quad(amps, qa, qb, move |a00, a01, a10, a11| {
                let v = [*a00, *a01, *a10, *a11];
                let mut out = [Complex::ZERO; 4];
                for (r, out_r) in out.iter_mut().enumerate() {
                    for (c, v_c) in v.iter().enumerate() {
                        *out_r += m[r][c] * *v_c;
                    }
                }
                *a00 = out[0];
                *a01 = out[1];
                *a10 = out[2];
                *a11 = out[3];
            }),
            Kernel::Measure { .. } | Kernel::Reset { .. } => {
                panic!("control kernels must be executed by a branching or trajectory driver")
            }
        }
    }
}

/// Serial pair sweep over one contiguous block whose length is a multiple of
/// `2 * bit`: for every pair `(i, i | bit)`, calls `f(&mut amps[i], &mut
/// amps[i | bit])`.
fn pair_sweep_serial<F>(block: &mut [Complex], bit: usize, f: &F)
where
    F: Fn(&mut Complex, &mut Complex),
{
    let span = bit << 1;
    debug_assert_eq!(block.len() % span, 0);
    for chunk in block.chunks_mut(span) {
        let (lo, hi) = chunk.split_at_mut(bit);
        for (a, b) in lo.iter_mut().zip(hi.iter_mut()) {
            f(a, b);
        }
    }
}

/// Runs `f` over every amplitude pair `(i, i | 1 << q)`.
///
/// Parallel above [`PAR_THRESHOLD`]: for low qubits the array splits into
/// contiguous [`CHUNK`]-sized blocks (each closed under pairing); for high
/// qubits each `2^(q+1)` block splits into lo/hi halves whose matching
/// sub-chunks become work items. Both schemes give every work item a disjoint
/// write set, so the result is independent of thread count.
pub(crate) fn for_each_pair<F>(amps: &mut [Complex], q: usize, f: F)
where
    F: Fn(&mut Complex, &mut Complex) + Sync,
{
    let bit = 1usize << q;
    let n = amps.len();
    debug_assert!(bit < n);
    if n < PAR_THRESHOLD || rayon::current_num_threads() <= 1 {
        pair_sweep_serial(amps, bit, &f);
        return;
    }
    pair_sweep_chunked(amps, bit, &f);
}

/// Parallel pair sweep: for low qubits the array splits into contiguous
/// [`CHUNK`]-sized blocks (each closed under pairing); for high qubits each
/// `2^(q+1)` block splits into lo/hi halves whose matching sub-chunks become
/// work items. Both schemes give every work item a disjoint write set.
fn pair_sweep_chunked<F>(amps: &mut [Complex], bit: usize, f: &F)
where
    F: Fn(&mut Complex, &mut Complex) + Sync,
{
    let n = amps.len();
    let span = bit << 1;
    if span <= CHUNK {
        let blocks: Vec<&mut [Complex]> = amps.chunks_mut(CHUNK).collect();
        blocks.into_par_iter().for_each(|block| pair_sweep_serial(block, bit, f));
    } else {
        let mut jobs: Vec<(&mut [Complex], &mut [Complex])> = Vec::with_capacity(n / CHUNK / 2);
        for block in amps.chunks_mut(span) {
            let (lo, hi) = block.split_at_mut(bit);
            for (lc, hc) in lo.chunks_mut(CHUNK).zip(hi.chunks_mut(CHUNK)) {
                jobs.push((lc, hc));
            }
        }
        jobs.into_par_iter().for_each(|(lo, hi)| {
            for (a, b) in lo.iter_mut().zip(hi.iter_mut()) {
                f(a, b);
            }
        });
    }
}

/// Runs `f(global_index, &mut amp)` over every amplitude — the multiply-only
/// driver for diagonal kernels (no partner amplitude is ever read).
pub(crate) fn for_each_indexed<F>(amps: &mut [Complex], f: F)
where
    F: Fn(usize, &mut Complex) + Sync,
{
    if amps.len() < PAR_THRESHOLD || rayon::current_num_threads() <= 1 {
        for (i, a) in amps.iter_mut().enumerate() {
            f(i, a);
        }
        return;
    }
    indexed_sweep_chunked(amps, &f);
}

/// Parallel indexed sweep: contiguous [`CHUNK`]-sized blocks, each carrying
/// its base offset so `f` still sees global indices.
fn indexed_sweep_chunked<F>(amps: &mut [Complex], f: &F)
where
    F: Fn(usize, &mut Complex) + Sync,
{
    let jobs: Vec<(usize, &mut [Complex])> =
        amps.chunks_mut(CHUNK).enumerate().map(|(ci, c)| (ci * CHUNK, c)).collect();
    jobs.into_par_iter().for_each(|(base, chunk)| {
        for (off, a) in chunk.iter_mut().enumerate() {
            f(base + off, a);
        }
    });
}

/// Serial quad sweep: enumerates the `n/4` base indices with both target
/// bits clear via carry-ripple stepping (`((i | mask) + 1) & !mask` advances
/// to the next index with the masked bits clear), touching each quad's four
/// amplitudes directly. The step is a handful of ALU ops regardless of which
/// qubits are targeted, so the sweep stays ahead of a full-array
/// scan-and-mask loop at every qubit position.
fn quad_sweep_serial<F>(amps: &mut [Complex], qa: usize, qb: usize, f: &F)
where
    F: Fn(&mut Complex, &mut Complex, &mut Complex, &mut Complex),
{
    let n = amps.len();
    let bit_a = 1usize << qa;
    let bit_b = 1usize << qb;
    let mask = bit_a | bit_b;
    let ptr = amps.as_mut_ptr();
    let mut i00 = 0usize;
    while i00 < n {
        // SAFETY: the four indices are distinct (they differ in the qa/qb
        // bits), in bounds (i00 < n with both bits clear), and this serial
        // sweep holds the only live references into `amps`.
        unsafe {
            f(
                &mut *ptr.add(i00),
                &mut *ptr.add(i00 | bit_b),
                &mut *ptr.add(i00 | bit_a),
                &mut *ptr.add(i00 | mask),
            )
        }
        i00 = ((i00 | mask) + 1) & !mask;
    }
}

/// Expands quad number `k` (an index over the `n/4` base states with both
/// target bits clear) to the full basis index with zeros inserted at bit
/// positions `lo` and `hi` (`lo < hi`).
#[inline(always)]
fn quad_base(k: usize, lo_mask: usize, hi_mask: usize) -> usize {
    let t = ((k & !lo_mask) << 1) | (k & lo_mask);
    ((t & !hi_mask) << 1) | (t & hi_mask)
}

/// Raw amplitude pointer shared across sweep threads. Safe because every
/// quad chunk writes a disjoint set of indices (see [`for_each_quad`]).
struct AmpsPtr(*mut Complex);
unsafe impl Send for AmpsPtr {}
unsafe impl Sync for AmpsPtr {}

impl AmpsPtr {
    /// Accessor (rather than field read) so closures capture the Sync
    /// wrapper, not the bare non-Sync `*mut` field.
    fn get(&self) -> *mut Complex {
        self.0
    }
}

/// Runs `f(a00, a01, a10, a11)` over every 4-amplitude group of qubits
/// `(qa, qb)`, where `a01` has only the `qb` bit set and `a10` only the `qa`
/// bit (matching the `(bit_a << 1) | bit_b` matrix convention).
///
/// Serial sweeps ripple-step base indices ([`quad_sweep_serial`]); parallel
/// sweeps (above [`PAR_THRESHOLD`] with more than one thread) enumerate quad
/// base indices in cache-blocked chunks ([`quad_sweep_chunked`]). Distinct
/// quad numbers expand to disjoint index quartets that partition the array,
/// so chunked writes never alias and results are independent of thread count.
pub(crate) fn for_each_quad<F>(amps: &mut [Complex], qa: usize, qb: usize, f: F)
where
    F: Fn(&mut Complex, &mut Complex, &mut Complex, &mut Complex) + Sync,
{
    let n = amps.len();
    debug_assert!(qa != qb && (1 << qa) < n && (1 << qb) < n);
    if n < PAR_THRESHOLD || rayon::current_num_threads() <= 1 {
        quad_sweep_serial(amps, qa, qb, &f);
        return;
    }
    quad_sweep_chunked(amps, qa, qb, &f);
}

/// Parallel quad sweep: [`QUAD_CHUNK`]-sized ranges of quad numbers, each
/// expanded to base indices via [`quad_base`] bit insertion.
fn quad_sweep_chunked<F>(amps: &mut [Complex], qa: usize, qb: usize, f: &F)
where
    F: Fn(&mut Complex, &mut Complex, &mut Complex, &mut Complex) + Sync,
{
    let n = amps.len();
    let (lo, hi) = (qa.min(qb), qa.max(qb));
    let lo_mask = (1usize << lo) - 1;
    let hi_mask = (1usize << hi) - 1;
    let bit_a = 1usize << qa;
    let bit_b = 1usize << qb;
    let quads = n >> 2;
    let ptr = AmpsPtr(amps.as_mut_ptr());

    let nchunks = quads.div_ceil(QUAD_CHUNK);
    (0..nchunks).into_par_iter().for_each(|c| {
        let p = ptr.get();
        let start = c * QUAD_CHUNK;
        for k in start..(start + QUAD_CHUNK).min(quads) {
            let i00 = quad_base(k, lo_mask, hi_mask);
            // SAFETY: i00/i01/i10/i11 are four distinct in-bounds indices,
            // and quartets of distinct k never overlap (they partition 0..n),
            // so no two concurrent chunk ranges touch the same amplitude.
            unsafe {
                f(
                    &mut *p.add(i00),
                    &mut *p.add(i00 | bit_b),
                    &mut *p.add(i00 | bit_a),
                    &mut *p.add(i00 | bit_a | bit_b),
                )
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(n_qubits: usize) -> Vec<Complex> {
        (0..1usize << n_qubits).map(|i| Complex::new(i as f64, -(i as f64))).collect()
    }

    #[test]
    fn pair_sweep_visits_every_pair_once() {
        for q in 0..4 {
            let mut amps = ramp(4);
            // f increments the low member by the high member's index marker
            for_each_pair(&mut amps, q, |a, b| {
                *a += Complex::new(1000.0, 0.0);
                *b += Complex::new(2000.0, 0.0);
            });
            let bit = 1 << q;
            for (i, a) in amps.iter().enumerate() {
                let expected = i as f64 + if i & bit == 0 { 1000.0 } else { 2000.0 };
                assert_eq!(a.re, expected, "q={q} i={i}");
            }
        }
    }

    #[test]
    fn quad_bases_partition_the_index_space() {
        use std::collections::HashSet;
        let n = 1 << 5;
        for qa in 0..5 {
            for qb in 0..5 {
                if qa == qb {
                    continue;
                }
                let (lo, hi) = (qa.min(qb), qa.max(qb));
                let lo_mask = (1usize << lo) - 1;
                let hi_mask = (1usize << hi) - 1;
                let (ba, bb) = (1usize << qa, 1usize << qb);
                let mut seen = HashSet::new();
                for k in 0..n / 4 {
                    let i00 = quad_base(k, lo_mask, hi_mask);
                    assert_eq!(i00 & (ba | bb), 0);
                    for idx in [i00, i00 | bb, i00 | ba, i00 | ba | bb] {
                        assert!(idx < n);
                        assert!(seen.insert(idx), "index {idx} visited twice");
                    }
                }
                assert_eq!(seen.len(), n);
            }
        }
    }

    #[test]
    fn swap_kernel_is_an_involution() {
        let mut amps = ramp(4);
        let orig = amps.clone();
        let k = Kernel::SwapPerm { qa: 1, qb: 3 };
        k.apply(&mut amps);
        assert_ne!(amps, orig);
        k.apply(&mut amps);
        assert_eq!(amps, orig);
    }

    #[test]
    fn chunked_sweeps_match_serial_bitwise() {
        // Drive the parallel chunked partitioning directly (the driver fns
        // would route to serial on a single-core host) and require bit-equal
        // results against the serial sweeps, for low, middle and high qubits
        // — both multi-chunk regimes of the pair sweep included.
        let n_qubits = 14; // 16384 amps: 2 blocks of CHUNK, 2 ranges of QUAD_CHUNK
        let rot = |a: &mut Complex, b: &mut Complex| {
            let (x, y) = (*a, *b);
            *a = Complex::new(0.6, 0.1) * x + Complex::new(0.2, -0.3) * y;
            *b = Complex::new(-0.2, 0.3) * x + Complex::new(0.6, 0.1) * y;
        };
        for q in [0usize, 7, 13] {
            let mut serial = ramp(n_qubits);
            let mut chunked = ramp(n_qubits);
            pair_sweep_serial(&mut serial, 1 << q, &rot);
            pair_sweep_chunked(&mut chunked, 1 << q, &rot);
            assert_eq!(serial, chunked, "pair sweep q={q}");
        }
        let quad_rot = |a: &mut Complex, b: &mut Complex, c: &mut Complex, d: &mut Complex| {
            let (x, y, z, w) = (*a, *b, *c, *d);
            *a = Complex::new(0.5, 0.0) * x + Complex::new(0.1, 0.2) * w;
            *b = Complex::new(0.5, 0.0) * y + Complex::new(0.2, -0.1) * z;
            *c = Complex::new(0.5, 0.0) * z + Complex::new(-0.2, 0.1) * y;
            *d = Complex::new(0.5, 0.0) * w + Complex::new(-0.1, -0.2) * x;
        };
        for (qa, qb) in [(0usize, 1usize), (0, 13), (6, 7), (13, 5)] {
            let mut serial = ramp(n_qubits);
            let mut chunked = ramp(n_qubits);
            quad_sweep_serial(&mut serial, qa, qb, &quad_rot);
            quad_sweep_chunked(&mut chunked, qa, qb, &quad_rot);
            assert_eq!(serial, chunked, "quad sweep qa={qa} qb={qb}");
        }
        let phase = |i: usize, a: &mut Complex| {
            *a = Complex::new(0.0, 1e-3 * (i % 7) as f64) * *a;
        };
        let mut serial = ramp(n_qubits);
        let mut chunked = ramp(n_qubits);
        for (i, a) in serial.iter_mut().enumerate() {
            phase(i, a);
        }
        indexed_sweep_chunked(&mut chunked, &phase);
        assert_eq!(serial, chunked, "indexed sweep");
    }

    #[test]
    fn parallel_sweeps_match_interpreted_bitwise() {
        // 17 qubits crosses PAR_THRESHOLD, so on multi-core hosts the kernels
        // take the parallel chunked path (single-core hosts route to the
        // serial ripple sweep) while StateVector's interpreted sweep is always
        // the naive scan. The per-pair / per-quad arithmetic is identical, so
        // amplitudes must be bit-equal — proving neither the enumeration
        // scheme nor the thread count can change results.
        use crate::StateVector;
        use qrcc_circuit::{Circuit, Gate, QubitId};
        let n_qubits = 17;
        let mut c = Circuit::new(n_qubits);
        for q in 0..n_qubits {
            c.h(q).rz(0.1 + q as f64, q);
        }
        let mut sv = StateVector::from_circuit(&c).unwrap();
        let mut amps = sv.amplitudes().to_vec();
        let m1 = crate::matrix::single_qubit_matrix(&Gate::Ry(0.7));
        for q in [0usize, 8, 16] {
            Kernel::Unary { qubit: q, m: m1 }.apply(&mut amps);
            sv.apply_matrix1(&m1, QubitId::new(q));
        }
        let m2 = crate::matrix::two_qubit_matrix(&Gate::Rxx(0.3));
        for (qa, qb) in [(0usize, 16usize), (5, 6), (16, 2)] {
            Kernel::Two { qa, qb, m: m2 }.apply(&mut amps);
            sv.apply_matrix2(&m2, QubitId::new(qa), QubitId::new(qb));
        }
        assert_eq!(amps.as_slice(), sv.amplitudes());
    }
}
