//! Compilation telemetry: how much of a circuit lowered to fused or
//! specialized kernels, and how often the [`KernelCache`](super::KernelCache)
//! served a compiled body without recompiling.

use std::collections::BTreeMap;
use std::fmt;

/// Per-gate-family lowering outcome. The three buckets are disjoint: every
/// gate of the family lands in exactly one of `fused` / `specialized` /
/// `general`, so they always sum to `gates`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FamilyStats {
    /// Gates of this family seen by the compiler.
    pub gates: u64,
    /// Gates lowered through the fusion pass into a fused-unary 2×2 kernel.
    /// This counts runs of any length — a run of one still produces a fused
    /// unary kernel; the actual gate-count reduction is what
    /// [`CompileStats::fusion_ratio`] reports. Runs that folded to the exact
    /// identity and were dropped also count here when they span ≥ 2 gates.
    pub fused: u64,
    /// Gates lowered alone to a specialized kernel (diagonal multiply,
    /// anti-diagonal flip, permutation, controlled flip, or eliminated as an
    /// exact identity).
    pub specialized: u64,
    /// Gates that fell back to the generic dense two-qubit kernel — the only
    /// kernel class with no specialization at all (e.g. `rxx`/`ryy`).
    pub general: u64,
}

impl FamilyStats {
    /// Gates covered by fusion or specialization — everything that avoided
    /// the generic dense two-qubit fallback.
    pub fn covered(&self) -> u64 {
        self.fused + self.specialized
    }
}

/// Report of a compilation (or an aggregate over many, when read from a
/// [`KernelCache`](super::KernelCache)).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CompileStats {
    /// Unitary gates consumed by the compiler.
    pub gates_in: u64,
    /// Unitary kernels emitted (excludes measure/reset control kernels).
    pub kernels_out: u64,
    /// Measure/reset kernels emitted.
    pub control_kernels: u64,
    /// Gates whose fused product was an exact identity and were dropped
    /// without emitting any kernel.
    pub eliminated_gates: u64,
    /// Requests served from an already-compiled cached body.
    pub cache_hits: u64,
    /// Requests that had to compile their body.
    pub cache_misses: u64,
    /// Lowering outcome per gate family (keyed by OpenQASM-style gate name).
    pub families: BTreeMap<String, FamilyStats>,
}

impl CompileStats {
    /// Gates in per kernel out; `1.0` when nothing was compiled. Eliminated
    /// gates make this exceed the naive ratio because they emit no kernel.
    pub fn fusion_ratio(&self) -> f64 {
        if self.kernels_out == 0 {
            if self.gates_in == 0 {
                1.0
            } else {
                self.gates_in as f64
            }
        } else {
            self.gates_in as f64 / self.kernels_out as f64
        }
    }

    /// Fraction of gates lowered to a fused or specialized kernel — i.e.
    /// every gate except those that fell back to the generic dense two-qubit
    /// kernel; `1.0` for an empty compilation.
    pub fn coverage(&self) -> f64 {
        if self.gates_in == 0 {
            return 1.0;
        }
        let covered: u64 = self.families.values().map(FamilyStats::covered).sum();
        covered as f64 / self.gates_in as f64
    }

    /// Records one gate of `family` into the given disjoint bucket.
    pub(crate) fn record_gate(&mut self, family: &str, bucket: Bucket) {
        self.gates_in += 1;
        let entry = self.families.entry(family.to_string()).or_default();
        entry.gates += 1;
        match bucket {
            Bucket::Fused => entry.fused += 1,
            Bucket::Specialized => entry.specialized += 1,
            Bucket::General => entry.general += 1,
        }
    }

    /// Accumulates `other` into `self` (bucket-wise sums).
    pub fn merge(&mut self, other: &CompileStats) {
        self.gates_in += other.gates_in;
        self.kernels_out += other.kernels_out;
        self.control_kernels += other.control_kernels;
        self.eliminated_gates += other.eliminated_gates;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        for (family, fs) in &other.families {
            let entry = self.families.entry(family.clone()).or_default();
            entry.gates += fs.gates;
            entry.fused += fs.fused;
            entry.specialized += fs.specialized;
            entry.general += fs.general;
        }
    }
}

/// Which disjoint [`FamilyStats`] bucket a gate landed in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Bucket {
    Fused,
    Specialized,
    General,
}

impl fmt::Display for CompileStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} gates -> {} kernels (+{} control), fusion {:.2}x, coverage {:.1}%, cache {}/{} hits",
            self.gates_in,
            self.kernels_out,
            self.control_kernels,
            self.fusion_ratio(),
            self.coverage() * 100.0,
            self.cache_hits,
            self.cache_hits + self.cache_misses,
        )?;
        for (family, fs) in &self.families {
            writeln!(
                f,
                "  {family:>8}: {} gates ({} fused, {} specialized, {} general)",
                fs.gates, fs.fused, fs.specialized, fs.general
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_fully_covered() {
        let s = CompileStats::default();
        assert_eq!(s.fusion_ratio(), 1.0);
        assert_eq!(s.coverage(), 1.0);
    }

    #[test]
    fn buckets_are_disjoint_and_merge_adds() {
        let mut a = CompileStats::default();
        a.record_gate("h", Bucket::Fused);
        a.record_gate("h", Bucket::General);
        a.kernels_out = 2;
        let mut b = CompileStats::default();
        b.record_gate("h", Bucket::Specialized);
        b.kernels_out = 1;
        a.merge(&b);
        let h = a.families["h"];
        assert_eq!(h.gates, 3);
        assert_eq!(h.fused + h.specialized + h.general, h.gates);
        assert_eq!(a.gates_in, 3);
        assert!((a.coverage() - 2.0 / 3.0).abs() < 1e-12);
        assert!((a.fusion_ratio() - 1.0).abs() < 1e-12);
    }
}
