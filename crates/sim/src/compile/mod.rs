//! Compile-then-execute: lowering circuits to flat fused-kernel programs.
//!
//! The interpreted simulator walks a circuit one [`Operation`] at a time,
//! paying one full amplitude sweep per gate. This module compiles the circuit
//! **once** into a [`KernelProgram`] — a flat list of [`Kernel`]s — and
//! executes that instead:
//!
//! * **Fusion** — adjacent single-qubit gates on the same wire (including
//!   runs separated only by operations on *other* wires, which commute) are
//!   folded into one 2×2 matrix, so a run of `k` gates costs one sweep.
//!   Runs whose product is an exact identity are dropped entirely.
//! * **Specialization** — diagonal gates (Z/S/T/RZ/Phase, CZ/CP/RZZ) lower
//!   to multiply-only sweeps with no pair gathering; X-like anti-diagonal
//!   products and SWAP lower to index remaps; CX/CY lower to controlled
//!   flips that touch only half the array. Remaining two-qubit gates become
//!   cache-blocked 4-amplitude sweeps.
//! * **Parallelism** — every sweep is rayon-chunked above
//!   [`PAR_THRESHOLD`](kernel::PAR_THRESHOLD) amplitudes with disjoint
//!   per-chunk write sets, so results are bit-identical for any thread count.
//! * **Caching** — [`KernelCache`] keys compiled bodies by
//!   [`Circuit::structural_hash`], splitting each request into a
//!   single-qubit init **prologue**, a shared **body**, and a
//!   measurement/basis-rotation **epilogue**. QRCC's deduplicated variant
//!   batches differ only in those frames, so thousands of variants share one
//!   compiled body and only the cheap frames are compiled per request.
//!
//! [`CompileStats`] reports how much of the circuit lowered to fused or
//! specialized kernels; backends surface it through
//! `ReconstructionReport` in `qrcc-core`.
//!
//! ```rust
//! use qrcc_circuit::Circuit;
//! use qrcc_sim::compile::FramedProgram;
//!
//! let mut c = Circuit::new(2);
//! c.h(0).t(0).h(0).cx(0, 1); // h·t·h fuses into one kernel
//! let program = FramedProgram::compile(&c);
//! assert_eq!(program.stats().gates_in, 4);
//! assert_eq!(program.stats().kernels_out, 2);
//! let sv = program.run_unitary().unwrap();
//! assert!((sv.norm() - 1.0).abs() < 1e-12);
//! ```
//!
//! [`Operation`]: qrcc_circuit::Operation

mod cache;
mod kernel;
mod stats;

pub use cache::KernelCache;
pub use kernel::{Kernel, PAR_THRESHOLD};
pub use stats::{CompileStats, FamilyStats};

use crate::branching::{distribution_over_clbits, Branch, BRANCH_PRUNE};
use crate::matrix::{matmul2, single_qubit_matrix, two_qubit_matrix, Matrix2};
use crate::{Complex, SimError, StateVector};
use qrcc_circuit::{Circuit, Gate, Operation, QubitId};
use stats::Bucket;
use std::sync::Arc;

/// Whether the `QRCC_SIM_INTERPRETED` environment variable forces the
/// interpreted (per-gate) execution path. Backends consult this once at
/// construction time; CI uses it to run the whole test suite differentially
/// against the compiled default.
pub fn interpreted_forced_by_env() -> bool {
    matches!(
        std::env::var("QRCC_SIM_INTERPRETED").ok().as_deref(),
        Some("1") | Some("true") | Some("yes")
    )
}

fn is_zero(c: Complex) -> bool {
    c.re == 0.0 && c.im == 0.0
}

fn is_one(c: Complex) -> bool {
    c.re == 1.0 && c.im == 0.0
}

/// A run of single-qubit gates on one wire, folded into one matrix.
struct Pending {
    m: Matrix2,
    gates: Vec<&'static str>,
}

/// Lowers an operation slice into `kernels`, fusing and specializing, and
/// records every gate's outcome in `stats`. `Measure`/`Reset` kernels carry
/// their index **relative to `ops`**; callers embedding a slice of a larger
/// circuit add their own offset when reporting errors.
pub(crate) fn lower_ops(
    num_qubits: usize,
    ops: &[Operation],
    kernels: &mut Vec<Kernel>,
    stats: &mut CompileStats,
) {
    let mut pending: Vec<Option<Pending>> = (0..num_qubits).map(|_| None).collect();
    for (op_index, op) in ops.iter().enumerate() {
        match op {
            Operation::Single { gate, qubit } => {
                let m = single_qubit_matrix(gate);
                let q = qubit.index();
                match &mut pending[q] {
                    // Later gates multiply from the left: state' = m · run · state.
                    Some(p) => {
                        p.m = matmul2(&m, &p.m);
                        p.gates.push(gate.name());
                    }
                    None => pending[q] = Some(Pending { m, gates: vec![gate.name()] }),
                }
            }
            Operation::Two { gate, qubits } => {
                flush(&mut pending, qubits[0].index(), kernels, stats);
                flush(&mut pending, qubits[1].index(), kernels, stats);
                lower_two(gate, qubits[0].index(), qubits[1].index(), kernels, stats);
            }
            Operation::Measure { qubit, clbit } => {
                flush(&mut pending, qubit.index(), kernels, stats);
                kernels.push(Kernel::Measure { qubit: qubit.index(), clbit: *clbit, op_index });
                stats.control_kernels += 1;
            }
            Operation::Reset { qubit } => {
                flush(&mut pending, qubit.index(), kernels, stats);
                kernels.push(Kernel::Reset { qubit: qubit.index(), op_index });
                stats.control_kernels += 1;
            }
            Operation::Barrier { .. } => {
                // An ordering fence: nothing fuses across a barrier.
                for q in 0..num_qubits {
                    flush(&mut pending, q, kernels, stats);
                }
            }
        }
    }
    for q in 0..num_qubits {
        flush(&mut pending, q, kernels, stats);
    }
}

/// Emits the pending fused run on qubit `q` (if any) as the most specialized
/// kernel its matrix admits. Zero tests are exact: gate matrices contain
/// exact 0.0 entries and products preserve them, so e.g. a run of diagonal
/// gates always classifies as diagonal.
fn flush(
    pending: &mut [Option<Pending>],
    q: usize,
    kernels: &mut Vec<Kernel>,
    stats: &mut CompileStats,
) {
    let Some(p) = pending[q].take() else { return };
    let m = p.m;
    let off_diag_zero = is_zero(m[0][1]) && is_zero(m[1][0]);
    let diag_zero = is_zero(m[0][0]) && is_zero(m[1][1]);
    let kernel = if off_diag_zero && is_one(m[0][0]) && is_one(m[1][1]) {
        stats.eliminated_gates += p.gates.len() as u64;
        None
    } else if off_diag_zero {
        Some(Kernel::Diag1 { qubit: q, p0: m[0][0], p1: m[1][1] })
    } else if diag_zero {
        Some(Kernel::Flip1 { qubit: q, c01: m[0][1], c10: m[1][0] })
    } else {
        Some(Kernel::Unary { qubit: q, m })
    };
    // A run of one still lowers through the fusion pass into a unary 2×2
    // kernel, so it counts as fused: only gates reaching the generic dense
    // two-qubit fallback in `lower_two` land in the general bucket. Singleton
    // runs whose matrix classifies as diagonal/anti-diagonal (or folds to the
    // identity) report as specialized instead.
    let singleton_bucket = match kernel {
        Some(Kernel::Unary { .. }) => Bucket::Fused,
        _ => Bucket::Specialized,
    };
    let bucket = if p.gates.len() >= 2 { Bucket::Fused } else { singleton_bucket };
    for name in &p.gates {
        stats.record_gate(name, bucket);
    }
    if let Some(k) = kernel {
        kernels.push(k);
        stats.kernels_out += 1;
    }
}

/// Lowers a two-qubit gate directly to its specialized kernel class.
fn lower_two(
    gate: &Gate,
    qa: usize,
    qb: usize,
    kernels: &mut Vec<Kernel>,
    stats: &mut CompileStats,
) {
    let m = two_qubit_matrix(gate);
    let (k, bucket) = match gate {
        Gate::Cz | Gate::CPhase(_) | Gate::Rzz(_) => {
            (Kernel::Diag2 { qa, qb, p: [m[0][0], m[1][1], m[2][2], m[3][3]] }, Bucket::Specialized)
        }
        Gate::Swap => (Kernel::SwapPerm { qa, qb }, Bucket::Specialized),
        Gate::Cx | Gate::Cy => (
            Kernel::CFlip { control: qa, target: qb, c01: m[2][3], c10: m[3][2] },
            Bucket::Specialized,
        ),
        _ => (Kernel::Two { qa, qb, m }, Bucket::General),
    };
    stats.record_gate(gate.name(), bucket);
    kernels.push(k);
    stats.kernels_out += 1;
}

/// A circuit compiled to a flat kernel list.
#[derive(Debug, Clone)]
pub struct KernelProgram {
    num_qubits: usize,
    num_clbits: usize,
    kernels: Vec<Kernel>,
    stats: CompileStats,
}

impl KernelProgram {
    /// Compiles `circuit` in one pass (no caching, no frame split).
    pub fn compile(circuit: &Circuit) -> Self {
        let mut kernels = Vec::new();
        let mut stats = CompileStats::default();
        lower_ops(circuit.num_qubits(), circuit.operations(), &mut kernels, &mut stats);
        KernelProgram {
            num_qubits: circuit.num_qubits(),
            num_clbits: circuit.num_clbits(),
            kernels,
            stats,
        }
    }

    /// The compiled kernels, in execution order.
    pub fn kernels(&self) -> &[Kernel] {
        &self.kernels
    }

    /// Compilation telemetry for this program.
    pub fn stats(&self) -> &CompileStats {
        &self.stats
    }

    /// Number of qubits the program acts on.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of classical bits the program writes.
    pub fn num_clbits(&self) -> usize {
        self.num_clbits
    }
}

/// A compiled circuit split into a variant-specific init **prologue**, a
/// (potentially cache-shared) **body**, and a measurement/output-basis
/// **epilogue** — the shape [`KernelCache`] produces so deduplicated variant
/// batches share one compiled body.
#[derive(Debug, Clone)]
pub struct FramedProgram {
    num_qubits: usize,
    num_clbits: usize,
    prologue: Vec<Kernel>,
    body: Arc<KernelProgram>,
    epilogue: Vec<Kernel>,
    /// Operation-index offsets of body/epilogue kernels in the source
    /// circuit, for error parity with the interpreted path.
    body_op_offset: usize,
    epilogue_op_offset: usize,
    stats: CompileStats,
}

impl FramedProgram {
    /// Compiles `circuit` as a single frameless body (no cache involved).
    pub fn compile(circuit: &Circuit) -> Self {
        let program = KernelProgram::compile(circuit);
        let stats = program.stats().clone();
        FramedProgram {
            num_qubits: circuit.num_qubits(),
            num_clbits: circuit.num_clbits(),
            prologue: Vec::new(),
            body: Arc::new(program),
            epilogue: Vec::new(),
            body_op_offset: 0,
            epilogue_op_offset: circuit.operations().len(),
            stats,
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn assemble(
        num_qubits: usize,
        num_clbits: usize,
        prologue: Vec<Kernel>,
        body: Arc<KernelProgram>,
        epilogue: Vec<Kernel>,
        body_op_offset: usize,
        epilogue_op_offset: usize,
        stats: CompileStats,
    ) -> Self {
        FramedProgram {
            num_qubits,
            num_clbits,
            prologue,
            body,
            epilogue,
            body_op_offset,
            epilogue_op_offset,
            stats,
        }
    }

    /// Combined compilation telemetry (body + frames; cache hit/miss marked
    /// when the program came from a [`KernelCache`]).
    pub fn stats(&self) -> &CompileStats {
        &self.stats
    }

    /// Number of qubits the program acts on.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of classical bits the program writes.
    pub fn num_clbits(&self) -> usize {
        self.num_clbits
    }

    /// The shared compiled body (useful to assert cache identity in tests).
    pub fn body(&self) -> &Arc<KernelProgram> {
        &self.body
    }

    /// All kernels in execution order: prologue, body, epilogue.
    pub fn kernels(&self) -> impl Iterator<Item = &Kernel> {
        self.prologue.iter().chain(self.body.kernels()).chain(self.epilogue.iter())
    }

    fn segments(&self) -> [(&[Kernel], usize); 3] {
        [
            (&self.prologue[..], 0),
            (self.body.kernels(), self.body_op_offset),
            (&self.epilogue[..], self.epilogue_op_offset),
        ]
    }

    /// Applies every kernel to `state`, failing on control kernels.
    ///
    /// # Errors
    ///
    /// [`SimError::NonUnitaryCircuit`] (with the source operation index) on
    /// the first measure/reset kernel — parity with
    /// [`StateVector::apply_circuit`].
    pub fn apply_unitary(&self, state: &mut StateVector) -> Result<(), SimError> {
        for (segment, offset) in self.segments() {
            for k in segment {
                match k {
                    Kernel::Measure { op_index, .. } | Kernel::Reset { op_index, .. } => {
                        return Err(SimError::NonUnitaryCircuit { index: offset + op_index })
                    }
                    _ => k.apply(state.amps_mut()),
                }
            }
        }
        Ok(())
    }

    /// Runs the program from |0…0⟩ — the compiled analogue of
    /// [`StateVector::from_circuit`].
    ///
    /// # Errors
    ///
    /// [`SimError::TooManyQubits`] past the simulator limit and
    /// [`SimError::NonUnitaryCircuit`] on measure/reset kernels.
    pub fn run_unitary(&self) -> Result<StateVector, SimError> {
        let mut state = StateVector::try_new(self.num_qubits)?;
        self.apply_unitary(&mut state)?;
        Ok(state)
    }

    /// Enumerates every measurement/reset branch exactly — the compiled
    /// analogue of [`enumerate_branches`](crate::branching::enumerate_branches).
    ///
    /// # Errors
    ///
    /// [`SimError::TooManyQubits`] past the simulator limit.
    pub fn enumerate_branches(&self) -> Result<Vec<Branch>, SimError> {
        let mut branches = vec![Branch {
            probability: 1.0,
            clbits: vec![false; self.num_clbits],
            state: StateVector::try_new(self.num_qubits)?,
        }];
        for (segment, _) in self.segments() {
            for k in segment {
                match k {
                    Kernel::Measure { qubit, clbit, .. } => {
                        let q = QubitId::new(*qubit);
                        let mut next = Vec::with_capacity(branches.len() * 2);
                        for b in branches {
                            for outcome in [false, true] {
                                let mut state = b.state.clone();
                                let p = state.project(q, outcome);
                                if p > BRANCH_PRUNE {
                                    let mut clbits = b.clbits.clone();
                                    clbits[*clbit] = outcome;
                                    next.push(Branch {
                                        probability: b.probability * p,
                                        clbits,
                                        state,
                                    });
                                }
                            }
                        }
                        branches = next;
                    }
                    Kernel::Reset { qubit, .. } => {
                        let q = QubitId::new(*qubit);
                        let mut next = Vec::with_capacity(branches.len() * 2);
                        for b in branches {
                            for outcome in [false, true] {
                                let mut state = b.state.clone();
                                let p = state.project(q, outcome);
                                if p > BRANCH_PRUNE {
                                    if outcome {
                                        state.apply_gate(&Gate::X, &[q]);
                                    }
                                    next.push(Branch {
                                        probability: b.probability * p,
                                        clbits: b.clbits.clone(),
                                        state,
                                    });
                                }
                            }
                        }
                        branches = next;
                    }
                    _ => {
                        for b in &mut branches {
                            k.apply(b.state.amps_mut());
                        }
                    }
                }
            }
        }
        Ok(branches)
    }

    /// The exact distribution over classical bits — the compiled analogue of
    /// [`classical_distribution`](crate::branching::classical_distribution).
    ///
    /// # Errors
    ///
    /// [`SimError::NothingToMeasure`] when the program has no classical bits,
    /// plus any error of [`FramedProgram::enumerate_branches`].
    pub fn classical_distribution(&self) -> Result<Vec<f64>, SimError> {
        if self.num_clbits == 0 {
            return Err(SimError::NothingToMeasure);
        }
        let branches = self.enumerate_branches()?;
        Ok(distribution_over_clbits(&branches, self.num_clbits))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::branching;

    fn assert_states_close(a: &StateVector, b: &StateVector) {
        assert_eq!(a.num_qubits(), b.num_qubits());
        for (x, y) in a.amplitudes().iter().zip(b.amplitudes()) {
            assert!((*x - *y).abs() < 1e-12, "{x:?} vs {y:?}");
        }
    }

    #[test]
    fn single_qubit_runs_fuse_to_one_kernel() {
        let mut c = Circuit::new(1);
        c.h(0).t(0).s(0).h(0).rx(0.4, 0);
        let p = KernelProgram::compile(&c);
        assert_eq!(p.stats().gates_in, 5);
        assert_eq!(p.stats().kernels_out, 1);
        assert!(p.stats().coverage() > 0.99);
        let sv = FramedProgram::compile(&c).run_unitary().unwrap();
        assert_states_close(&sv, &StateVector::from_circuit(&c).unwrap());
    }

    #[test]
    fn fusion_reaches_across_other_wires() {
        // rz(q0); cx(q1,q2); rz(q0) — the two rz's commute past the cx and
        // must fuse into a single diagonal kernel.
        let mut c = Circuit::new(3);
        c.rz(0.3, 0).cx(1, 2).rz(0.5, 0);
        let p = KernelProgram::compile(&c);
        assert_eq!(p.stats().kernels_out, 2);
        assert!(matches!(p.kernels()[1], Kernel::Diag1 { qubit: 0, .. }));
        let sv = FramedProgram::compile(&c).run_unitary().unwrap();
        assert_states_close(&sv, &StateVector::from_circuit(&c).unwrap());
    }

    #[test]
    fn identity_runs_are_eliminated() {
        let mut c = Circuit::new(1);
        c.z(0).z(0);
        let p = KernelProgram::compile(&c);
        assert_eq!(p.stats().kernels_out, 0);
        assert_eq!(p.stats().eliminated_gates, 2);
        assert_eq!(p.stats().coverage(), 1.0);
        let mut x = Circuit::new(1);
        x.x(0).x(0);
        assert_eq!(KernelProgram::compile(&x).stats().kernels_out, 0);
    }

    #[test]
    fn specialization_classes_match_gate_families() {
        let mut c = Circuit::new(2);
        c.z(0).x(1).cz(0, 1).swap(0, 1).cx(0, 1).rzz(0.3, 0, 1).rxx(0.2, 0, 1);
        let p = KernelProgram::compile(&c);
        let kinds: Vec<&Kernel> = p.kernels().iter().collect();
        assert!(matches!(kinds[0], Kernel::Diag1 { .. }));
        assert!(matches!(kinds[1], Kernel::Flip1 { .. }));
        assert!(matches!(kinds[2], Kernel::Diag2 { .. }));
        assert!(matches!(kinds[3], Kernel::SwapPerm { .. }));
        assert!(matches!(kinds[4], Kernel::CFlip { .. }));
        assert!(matches!(kinds[5], Kernel::Diag2 { .. }));
        assert!(matches!(kinds[6], Kernel::Two { .. }));
        // only rxx is general
        assert_eq!(p.stats().families["rxx"].general, 1);
        assert!((p.stats().coverage() - 6.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn barriers_are_fusion_fences() {
        let mut fused = Circuit::new(1);
        fused.h(0).h(0);
        let mut fenced = Circuit::new(1);
        fenced.h(0).barrier().h(0);
        assert_eq!(KernelProgram::compile(&fused).stats().kernels_out, 1);
        assert_eq!(KernelProgram::compile(&fenced).stats().kernels_out, 2);
    }

    #[test]
    fn run_unitary_error_parity_with_interpreted() {
        let mut c = Circuit::new(2);
        c.h(0).measure(0, 0).h(1);
        let compiled = FramedProgram::compile(&c).run_unitary();
        assert_eq!(compiled.unwrap_err(), StateVector::from_circuit(&c).unwrap_err());
    }

    #[test]
    fn compiled_distribution_matches_interpreted_with_reuse() {
        // mid-circuit measure + reset (the qubit-reuse pattern)
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).measure(0, 0).reset(0).h(0).measure(0, 1).measure(1, 2);
        let compiled = FramedProgram::compile(&c).classical_distribution().unwrap();
        let interpreted = branching::classical_distribution(&c).unwrap();
        assert_eq!(compiled.len(), interpreted.len());
        for (a, b) in compiled.iter().zip(&interpreted) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn controlled_flip_coefficients_for_cy() {
        let mut c = Circuit::new(2);
        c.x(0).cy(0, 1);
        let sv = FramedProgram::compile(&c).run_unitary().unwrap();
        assert_states_close(&sv, &StateVector::from_circuit(&c).unwrap());
        // |10⟩ -> i|11⟩
        assert!((sv.amplitude(0b11) - Complex::i()).abs() < 1e-12);
    }
}
