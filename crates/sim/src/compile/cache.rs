//! Compiled-program cache keyed by [`Circuit::structural_hash`].
//!
//! QRCC's variant enumeration produces batches of circuits that differ only
//! in their init-state prologue (a prefix of single-qubit gates) and their
//! measurement/output-basis epilogue (a suffix of single-qubit gates and
//! measurements) around an identical body. The cache canonicalises each
//! request into that three-part frame split, compiles the body **once**, and
//! re-derives only the cheap frames per request.

use super::{lower_ops, CompileStats, FramedProgram, Kernel, KernelProgram};
use qrcc_circuit::{Circuit, Operation};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

struct CachedBody {
    /// The canonical body circuit, kept for structural-equality collision
    /// checks (two distinct bodies may share a 64-bit hash).
    circuit: Circuit,
    program: Arc<KernelProgram>,
}

/// A thread-safe cache of compiled circuit bodies.
///
/// ```rust
/// use qrcc_circuit::Circuit;
/// use qrcc_sim::compile::KernelCache;
///
/// let cache = KernelCache::new();
/// let mut a = Circuit::new(2);
/// a.h(0).cx(0, 1).measure_all(); // variant A: no init frame
/// let mut b = Circuit::new(2);
/// b.x(0).h(0).cx(0, 1).measure_all(); // variant B: |1⟩ init prologue
/// let pa = cache.get_or_compile(&a);
/// let pb = cache.get_or_compile(&b);
/// // same cx body compiled once, shared by both variants
/// assert!(std::sync::Arc::ptr_eq(pa.body(), pb.body()));
/// assert_eq!(cache.hits(), 1);
/// ```
pub struct KernelCache {
    buckets: Mutex<HashMap<u64, Vec<CachedBody>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    aggregate: Mutex<CompileStats>,
}

impl KernelCache {
    /// An empty cache.
    pub fn new() -> Self {
        KernelCache {
            buckets: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            aggregate: Mutex::new(CompileStats::default()),
        }
    }

    /// Compiles `circuit` (or patches frames around an already-compiled
    /// body) into a [`FramedProgram`].
    ///
    /// The prologue is the maximal prefix of single-qubit gates, the
    /// epilogue the maximal suffix of single-qubit gates and measurements;
    /// the body between them is looked up by structural hash (with a full
    /// structural-equality check against collisions) and compiled at most
    /// once. Compilation happens under the bucket lock so a batch of
    /// identical bodies arriving concurrently compiles exactly once.
    pub fn get_or_compile(&self, circuit: &Circuit) -> FramedProgram {
        let ops = circuit.operations();
        let prologue_len =
            ops.iter().take_while(|op| matches!(op, Operation::Single { .. })).count();
        let mut epilogue_start = ops.len();
        while epilogue_start > prologue_len
            && matches!(
                ops[epilogue_start - 1],
                Operation::Single { .. } | Operation::Measure { .. }
            )
        {
            epilogue_start -= 1;
        }

        let mut body = Circuit::with_clbits(circuit.num_qubits(), circuit.num_clbits());
        for op in &ops[prologue_len..epilogue_start] {
            body.push(op.clone());
        }
        let hash = body.structural_hash();

        let (program, hit) = {
            let mut buckets = self.buckets.lock().expect("kernel cache poisoned");
            let bucket = buckets.entry(hash).or_default();
            match bucket.iter().find(|cb| cb.circuit.structurally_equal(&body)) {
                Some(cb) => (Arc::clone(&cb.program), true),
                None => {
                    let program = Arc::new(KernelProgram::compile(&body));
                    bucket.push(CachedBody { circuit: body, program: Arc::clone(&program) });
                    (program, false)
                }
            }
        };

        let mut frame_stats = CompileStats::default();
        let prologue = lower_slice(circuit.num_qubits(), &ops[..prologue_len], &mut frame_stats);
        let epilogue = lower_slice(circuit.num_qubits(), &ops[epilogue_start..], &mut frame_stats);
        if hit {
            frame_stats.cache_hits = 1;
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            frame_stats.cache_misses = 1;
            self.misses.fetch_add(1, Ordering::Relaxed);
        }

        {
            // The aggregate counts compiler work actually done: frames every
            // request, each distinct body once.
            let mut agg = self.aggregate.lock().expect("kernel cache poisoned");
            agg.merge(&frame_stats);
            if !hit {
                agg.merge(program.stats());
            }
        }

        let mut stats = frame_stats;
        stats.merge(program.stats());
        FramedProgram::assemble(
            circuit.num_qubits(),
            circuit.num_clbits(),
            prologue,
            program,
            epilogue,
            prologue_len,
            epilogue_start,
            stats,
        )
    }

    /// Requests served from an already-compiled body.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Requests that compiled a new body.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of distinct compiled bodies resident in the cache.
    pub fn compiled_bodies(&self) -> usize {
        self.buckets.lock().expect("kernel cache poisoned").values().map(Vec::len).sum()
    }

    /// Cumulative compile telemetry: frame compilations for every request,
    /// each distinct body once, plus total cache hit/miss counts.
    pub fn stats(&self) -> CompileStats {
        self.aggregate.lock().expect("kernel cache poisoned").clone()
    }
}

impl Default for KernelCache {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for KernelCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("KernelCache")
            .field("bodies", &self.compiled_bodies())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

fn lower_slice(num_qubits: usize, ops: &[Operation], stats: &mut CompileStats) -> Vec<Kernel> {
    let mut kernels = Vec::new();
    lower_ops(num_qubits, ops, &mut kernels, stats);
    kernels
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds init-frame variants around a shared entangling body, mimicking
    /// the variant batches the cutting pipeline enumerates.
    fn variant(init: &[&str]) -> Circuit {
        let mut c = Circuit::with_clbits(2, 2);
        for g in init {
            match *g {
                "x" => c.x(0),
                "h" => c.h(0),
                "s" => c.s(0),
                _ => unreachable!(),
            };
        }
        c.cx(0, 1).rzz(0.4, 0, 1);
        c.h(1).measure(0, 0).measure(1, 1);
        c
    }

    #[test]
    fn variants_share_one_compiled_body() {
        let cache = KernelCache::new();
        let inits: [&[&str]; 4] = [&[], &["x"], &["h"], &["h", "s"]];
        let programs: Vec<FramedProgram> =
            inits.iter().map(|i| cache.get_or_compile(&variant(i))).collect();
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 3);
        assert_eq!(cache.compiled_bodies(), 1);
        for p in &programs[1..] {
            assert!(Arc::ptr_eq(programs[0].body(), p.body()));
        }
        // distributions still reflect the differing prologues
        let d0 = programs[0].classical_distribution().unwrap();
        let d1 = programs[1].classical_distribution().unwrap();
        assert!((d0.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_ne!(d0, d1);
    }

    #[test]
    fn distinct_bodies_do_not_collide() {
        let cache = KernelCache::new();
        let mut a = Circuit::new(2);
        a.h(0).cx(0, 1).measure_all();
        let mut b = Circuit::new(2);
        b.h(0).cz(0, 1).measure_all();
        cache.get_or_compile(&a);
        cache.get_or_compile(&b);
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.compiled_bodies(), 2);
    }

    #[test]
    fn all_single_qubit_circuit_has_empty_body() {
        let cache = KernelCache::new();
        let mut c = Circuit::with_clbits(1, 1);
        c.h(0).t(0).measure(0, 0);
        let p = cache.get_or_compile(&c);
        assert!(p.body().kernels().is_empty());
        let d = p.classical_distribution().unwrap();
        assert!((d[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn aggregate_stats_count_bodies_once() {
        let cache = KernelCache::new();
        for _ in 0..3 {
            let mut c = Circuit::new(2);
            c.h(0).cx(0, 1).measure_all();
            cache.get_or_compile(&c);
        }
        let stats = cache.stats();
        assert_eq!(stats.cache_hits, 2);
        assert_eq!(stats.cache_misses, 1);
        // body (cx) compiled once; prologue h compiled per request
        assert_eq!(stats.families["cx"].gates, 1);
        assert_eq!(stats.families["h"].gates, 3);
    }
}
