//! Exact enumeration of measurement branches.
//!
//! Gate cutting weights each subcircuit instance's expectation value by the
//! ±1 outcome β of a mid-circuit measurement (paper Eq. (4)). To verify the
//! reconstruction exactly (without shot noise), the pipeline needs the full
//! set of measurement branches of a circuit, each with its probability,
//! recorded classical bits and final state. [`enumerate_branches`] provides
//! exactly that.

use crate::{SimError, StateVector};
use qrcc_circuit::{Circuit, Operation};

/// Branches whose probability falls at or below this threshold are pruned —
/// shared by the interpreted enumerator and the compiled
/// [`FramedProgram`](crate::compile::FramedProgram) so both paths keep the
/// same branch set.
pub(crate) const BRANCH_PRUNE: f64 = 1e-15;

/// One measurement branch of a circuit execution.
#[derive(Debug, Clone)]
pub struct Branch {
    /// Probability of this branch (product of the probabilities of its
    /// measurement outcomes).
    pub probability: f64,
    /// Recorded classical bits, indexed by classical bit number. Bits never
    /// written remain `false`.
    pub clbits: Vec<bool>,
    /// The (normalised) final state of the branch.
    pub state: StateVector,
}

/// Enumerates every measurement/reset branch of `circuit` exactly.
///
/// Branches with zero probability are pruned. The number of branches is at
/// most `2^(#measurements + #resets)`, so this is intended for the small
/// subcircuits produced by the cutting pipeline, not for full workloads.
///
/// # Errors
///
/// Returns [`SimError::TooManyQubits`] if the circuit exceeds the simulator's
/// qubit limit.
///
/// # Example
///
/// ```rust
/// use qrcc_circuit::Circuit;
/// use qrcc_sim::branching::enumerate_branches;
///
/// let mut c = Circuit::new(1);
/// c.h(0).measure(0, 0);
/// let branches = enumerate_branches(&c).unwrap();
/// assert_eq!(branches.len(), 2);
/// assert!((branches[0].probability - 0.5).abs() < 1e-12);
/// ```
pub fn enumerate_branches(circuit: &Circuit) -> Result<Vec<Branch>, SimError> {
    let num_clbits = circuit.num_clbits();
    let mut branches = vec![Branch {
        probability: 1.0,
        clbits: vec![false; num_clbits],
        state: StateVector::try_new(circuit.num_qubits())?,
    }];

    for op in circuit.operations() {
        match op {
            Operation::Single { gate, qubit } => {
                for b in &mut branches {
                    b.state.apply_gate(gate, &[*qubit]);
                }
            }
            Operation::Two { gate, qubits } => {
                for b in &mut branches {
                    b.state.apply_gate(gate, qubits);
                }
            }
            Operation::Barrier { .. } => {}
            Operation::Measure { qubit, clbit } => {
                let mut next = Vec::with_capacity(branches.len() * 2);
                for b in branches.into_iter() {
                    for outcome in [false, true] {
                        let mut state = b.state.clone();
                        let p = state.project(*qubit, outcome);
                        if p > BRANCH_PRUNE {
                            let mut clbits = b.clbits.clone();
                            clbits[*clbit] = outcome;
                            next.push(Branch { probability: b.probability * p, clbits, state });
                        }
                    }
                }
                branches = next;
            }
            Operation::Reset { qubit } => {
                let mut next = Vec::with_capacity(branches.len() * 2);
                for b in branches.into_iter() {
                    for outcome in [false, true] {
                        let mut state = b.state.clone();
                        let p = state.project(*qubit, outcome);
                        if p > BRANCH_PRUNE {
                            if outcome {
                                state.apply_gate(&qrcc_circuit::Gate::X, &[*qubit]);
                            }
                            next.push(Branch {
                                probability: b.probability * p,
                                clbits: b.clbits.clone(),
                                state,
                            });
                        }
                    }
                }
                branches = next;
            }
        }
    }
    Ok(branches)
}

/// The exact probability distribution over the circuit's classical bits,
/// marginalising over measurement branches. Entry `k` of the returned vector
/// is the probability of the classical bit pattern whose bit `i` equals bit
/// `i` of `k`.
///
/// # Errors
///
/// Propagates errors from [`enumerate_branches`]; additionally returns
/// [`SimError::NothingToMeasure`] when the circuit has no classical bits.
pub fn classical_distribution(circuit: &Circuit) -> Result<Vec<f64>, SimError> {
    if circuit.num_clbits() == 0 {
        return Err(SimError::NothingToMeasure);
    }
    let branches = enumerate_branches(circuit)?;
    Ok(distribution_over_clbits(&branches, circuit.num_clbits()))
}

/// Marginalises a branch set into the distribution over classical-bit
/// patterns — shared by the interpreted and compiled executors.
pub(crate) fn distribution_over_clbits(branches: &[Branch], num_clbits: usize) -> Vec<f64> {
    let mut dist = vec![0.0; 1 << num_clbits];
    for b in branches {
        let mut key = 0usize;
        for (i, &bit) in b.clbits.iter().enumerate() {
            if bit {
                key |= 1 << i;
            }
        }
        dist[key] += b.probability;
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrcc_circuit::observable::PauliString;

    #[test]
    fn unitary_circuit_has_a_single_branch() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let branches = enumerate_branches(&c).unwrap();
        assert_eq!(branches.len(), 1);
        assert!((branches[0].probability - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bell_measurement_branches_are_correlated() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).measure(0, 0);
        let branches = enumerate_branches(&c).unwrap();
        assert_eq!(branches.len(), 2);
        for b in &branches {
            assert!((b.probability - 0.5).abs() < 1e-12);
            // qubit 1 must agree with the recorded outcome of qubit 0
            let expected = b.clbits[0];
            assert!(
                (b.state.outcome_probability(qrcc_circuit::QubitId::new(1), expected) - 1.0).abs()
                    < 1e-12
            );
        }
    }

    #[test]
    fn deterministic_measurement_does_not_split() {
        let mut c = Circuit::new(1);
        c.x(0).measure(0, 0);
        let branches = enumerate_branches(&c).unwrap();
        assert_eq!(branches.len(), 1);
        assert!(branches[0].clbits[0]);
    }

    #[test]
    fn branch_probabilities_sum_to_one() {
        let mut c = Circuit::new(3);
        c.h(0).ry(0.7, 1).cx(0, 1).measure(0, 0).reset(0).h(0).cx(1, 2).measure(1, 1).measure(2, 2);
        let branches = enumerate_branches(&c).unwrap();
        let total: f64 = branches.iter().map(|b| b.probability).sum();
        assert!((total - 1.0).abs() < 1e-10);
    }

    #[test]
    fn reset_branches_keep_qubit_in_zero() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).reset(0);
        for b in enumerate_branches(&c).unwrap() {
            assert!(b.state.outcome_probability(qrcc_circuit::QubitId::new(0), true) < 1e-12);
        }
    }

    #[test]
    fn classical_distribution_of_ghz_measurement() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2).measure_all();
        let dist = classical_distribution(&c).unwrap();
        assert!((dist[0b000] - 0.5).abs() < 1e-12);
        assert!((dist[0b111] - 0.5).abs() < 1e-12);
        assert!((dist.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn classical_distribution_requires_clbits() {
        let mut c = Circuit::new(1);
        c.h(0);
        assert!(matches!(classical_distribution(&c), Err(SimError::NothingToMeasure)));
    }

    #[test]
    fn qubit_reuse_style_circuit_statistics() {
        // Measure a qubit, reset it, and use it as a fresh logical qubit:
        // the two recorded bits must be independent 50/50 outcomes.
        let mut c = Circuit::new(1);
        c.h(0).measure(0, 0).reset(0).h(0).measure(0, 1);
        let dist = classical_distribution(&c).unwrap();
        for p in &dist {
            assert!((p - 0.25).abs() < 1e-12);
        }
        // expectation of the reused wire's Z from the branch states
        let branches = enumerate_branches(&c).unwrap();
        let ez: f64 = branches
            .iter()
            .map(|b| b.probability * b.state.expectation_pauli(&PauliString::z(1, 0)))
            .sum();
        assert!(ez.abs() < 1e-12);
    }
}
