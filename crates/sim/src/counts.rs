use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// A histogram of measurement outcomes over `num_bits` classical bits.
///
/// Outcomes are stored as `u64` keys where bit `i` of the key is the value of
/// classical bit `i` (so at most 64 classical bits per histogram — far more
/// than any subcircuit the QRCC pipeline executes).
///
/// ```rust
/// use qrcc_sim::Counts;
///
/// let mut counts = Counts::new(2);
/// counts.record(0b00, 3);
/// counts.record(0b11, 1);
/// assert_eq!(counts.shots(), 4);
/// assert!((counts.probability(0b00) - 0.75).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Counts {
    counts: HashMap<u64, u64>,
    num_bits: usize,
    shots: u64,
}

impl Counts {
    /// An empty histogram over `num_bits` classical bits.
    ///
    /// # Panics
    ///
    /// Panics if `num_bits > 64`.
    pub fn new(num_bits: usize) -> Self {
        assert!(num_bits <= 64, "counts histograms support at most 64 classical bits");
        Counts { counts: HashMap::new(), num_bits, shots: 0 }
    }

    /// Number of classical bits of each outcome.
    pub fn num_bits(&self) -> usize {
        self.num_bits
    }

    /// Total number of recorded shots.
    pub fn shots(&self) -> u64 {
        self.shots
    }

    /// Records `count` occurrences of `outcome`.
    pub fn record(&mut self, outcome: u64, count: u64) {
        *self.counts.entry(outcome).or_insert(0) += count;
        self.shots += count;
    }

    /// Records one occurrence of an outcome given as a bit slice
    /// (`bits[i]` is classical bit `i`).
    pub fn record_bits(&mut self, bits: &[bool]) {
        let mut key = 0u64;
        for (i, &b) in bits.iter().enumerate() {
            if b {
                key |= 1 << i;
            }
        }
        self.record(key, 1);
    }

    /// The number of shots that produced `outcome`.
    pub fn count(&self, outcome: u64) -> u64 {
        self.counts.get(&outcome).copied().unwrap_or(0)
    }

    /// The empirical probability of `outcome` (0 if no shots were recorded).
    pub fn probability(&self, outcome: u64) -> f64 {
        if self.shots == 0 {
            0.0
        } else {
            self.count(outcome) as f64 / self.shots as f64
        }
    }

    /// Iterator over `(outcome, count)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts.iter().map(|(k, v)| (*k, *v))
    }

    /// The empirical probability vector over all `2^num_bits` outcomes.
    ///
    /// # Panics
    ///
    /// Panics if `num_bits` is large enough that the dense vector would not
    /// fit in memory (more than 30 bits).
    pub fn probability_vector(&self) -> Vec<f64> {
        assert!(self.num_bits <= 30, "dense probability vector limited to 30 bits");
        let mut v = vec![0.0; 1 << self.num_bits];
        if self.shots == 0 {
            return v;
        }
        for (k, c) in &self.counts {
            v[*k as usize] = *c as f64 / self.shots as f64;
        }
        v
    }

    /// Merges another histogram into this one.
    ///
    /// # Panics
    ///
    /// Panics if the bit widths differ.
    pub fn merge(&mut self, other: &Counts) {
        assert_eq!(self.num_bits, other.num_bits, "cannot merge histograms of different widths");
        for (k, c) in other.iter() {
            self.record(k, c);
        }
    }

    /// The expectation value of the ±1-valued parity of the listed bits:
    /// `E[(-1)^{popcount(outcome & mask)}]`.
    pub fn parity_expectation(&self, bits: &[usize]) -> f64 {
        if self.shots == 0 {
            return 0.0;
        }
        let mask: u64 = bits.iter().fold(0, |m, b| m | (1 << b));
        let mut total = 0.0;
        for (outcome, count) in self.iter() {
            let parity = (outcome & mask).count_ones() % 2;
            let sign = if parity == 0 { 1.0 } else { -1.0 };
            total += sign * count as f64;
        }
        total / self.shots as f64
    }

    /// Total-variation distance to an exact probability vector over the same
    /// bit width: `½ Σ_x |p̂(x) − p(x)|`.
    ///
    /// # Panics
    ///
    /// Panics if `exact.len() != 2^num_bits`.
    pub fn total_variation_distance(&self, exact: &[f64]) -> f64 {
        assert_eq!(exact.len(), 1usize << self.num_bits, "probability vector length mismatch");
        let mut distance = 0.0;
        for (x, p) in exact.iter().enumerate() {
            distance += (self.probability(x as u64) - p).abs();
        }
        distance / 2.0
    }
}

impl fmt::Display for Counts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut entries: Vec<(u64, u64)> = self.iter().collect();
        entries.sort_unstable();
        write!(f, "{{")?;
        for (i, (k, v)) in entries.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{:0width$b}: {}", k, v, width = self.num_bits.max(1))?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_probability() {
        let mut c = Counts::new(3);
        c.record(0b101, 2);
        c.record_bits(&[true, false, true]);
        assert_eq!(c.count(0b101), 3);
        assert_eq!(c.shots(), 3);
        assert!((c.probability(0b101) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn probability_vector_sums_to_one() {
        let mut c = Counts::new(2);
        c.record(0, 5);
        c.record(3, 15);
        let v = c.probability_vector();
        assert_eq!(v.len(), 4);
        assert!((v.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((v[3] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn parity_expectation_of_deterministic_outcomes() {
        let mut c = Counts::new(2);
        c.record(0b11, 10);
        // parity of both bits of 11 is even -> +1
        assert!((c.parity_expectation(&[0, 1]) - 1.0).abs() < 1e-12);
        // parity of bit 0 alone is odd -> -1
        assert!((c.parity_expectation(&[0]) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn parity_expectation_of_uniform_mixture_is_zero() {
        let mut c = Counts::new(1);
        c.record(0, 500);
        c.record(1, 500);
        assert!((c.parity_expectation(&[0])).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Counts::new(2);
        a.record(1, 4);
        let mut b = Counts::new(2);
        b.record(1, 1);
        b.record(2, 5);
        a.merge(&b);
        assert_eq!(a.count(1), 5);
        assert_eq!(a.count(2), 5);
        assert_eq!(a.shots(), 10);
    }

    #[test]
    fn tvd_against_exact_distribution() {
        let mut c = Counts::new(1);
        c.record(0, 50);
        c.record(1, 50);
        assert!(c.total_variation_distance(&[0.5, 0.5]) < 1e-12);
        assert!((c.total_variation_distance(&[1.0, 0.0]) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "different widths")]
    fn merge_rejects_width_mismatch() {
        let mut a = Counts::new(2);
        let b = Counts::new(3);
        a.merge(&b);
    }

    #[test]
    fn empty_counts_probability_is_zero() {
        let c = Counts::new(2);
        assert_eq!(c.probability(0), 0.0);
        assert_eq!(c.parity_expectation(&[0]), 0.0);
    }
}
