//! Helpers for estimating Pauli expectation values from shot counts.
//!
//! A Pauli-string expectation `⟨P⟩` is estimated by rotating each qubit in
//! the string's support into the computational basis (H for X, S†·H for Y),
//! measuring those qubits, and averaging the ±1 parity of the outcomes —
//! exactly how the paper's shot-based runs evaluate Hamiltonian terms.

use crate::Counts;
use qrcc_circuit::observable::{Pauli, PauliString};
use qrcc_circuit::Circuit;

/// Builds the measurement circuit for one Pauli string: a copy of `base`
/// with basis-change rotations appended and every support qubit measured into
/// classical bits `0..support.len()` (in support order).
///
/// # Panics
///
/// Panics if the string's width does not match the circuit, or if the base
/// circuit is not purely unitary (it must not already contain measurements).
pub fn measurement_circuit(base: &Circuit, string: &PauliString) -> Circuit {
    assert_eq!(string.num_qubits(), base.num_qubits(), "observable width mismatch");
    assert!(base.is_unitary_only(), "measurement_circuit requires a unitary base circuit");
    let mut circuit = base.clone();
    let support = string.support();
    for (clbit, &q) in support.iter().enumerate() {
        match string.pauli(q) {
            Pauli::X => {
                circuit.h(q);
            }
            Pauli::Y => {
                circuit.sdg(q).h(q);
            }
            Pauli::Z => {}
            Pauli::I => unreachable!("support() only returns non-identity qubits"),
        }
        circuit.measure(q, clbit);
    }
    circuit
}

/// Estimates `⟨P⟩` from the counts of a [`measurement_circuit`] run: the
/// expectation of the parity of classical bits `0..support_len`.
pub fn expectation_from_counts(counts: &Counts, support_len: usize) -> f64 {
    if support_len == 0 {
        return 1.0;
    }
    let bits: Vec<usize> = (0..support_len).collect();
    counts.parity_expectation(&bits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StateVector;
    use qrcc_circuit::observable::PauliString;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn measurement_circuit_adds_rotations_and_measures() {
        let mut base = Circuit::new(3);
        base.h(0).cx(0, 1);
        let string = PauliString::from_paulis(vec![Pauli::X, Pauli::Z, Pauli::Y]);
        let mc = measurement_circuit(&base, &string);
        let ops = mc.count_ops();
        assert_eq!(ops["measure"], 3);
        // X basis change adds one extra H, Y adds sdg + h
        assert_eq!(ops["h"], 1 + 1 + 1);
        assert_eq!(ops["sdg"], 1);
    }

    #[test]
    fn shot_estimate_matches_exact_expectation() {
        let mut base = Circuit::new(2);
        base.ry(0.9, 0).cx(0, 1).rz(0.4, 1);
        let string = PauliString::zz(2, 0, 1);
        let exact = StateVector::from_circuit(&base).unwrap().expectation_pauli(&string);

        let mc = measurement_circuit(&base, &string);
        // simulate measurement by sampling the measured qubits directly
        let sv = StateVector::from_circuit(&base).unwrap();
        let mut rng = StdRng::seed_from_u64(17);
        let counts = sv.sample_counts(50_000, &mut rng).unwrap();
        // support qubits are 0 and 1, mapped to clbits 0 and 1 in order
        let estimate = counts.parity_expectation(&[0, 1]);
        assert!((estimate - exact).abs() < 0.02, "estimate {estimate} vs exact {exact}");
        assert_eq!(mc.num_clbits(), 2);
    }

    #[test]
    fn identity_string_expectation_is_one() {
        let counts = Counts::new(1);
        assert_eq!(expectation_from_counts(&counts, 0), 1.0);
    }

    #[test]
    #[should_panic(expected = "unitary")]
    fn measurement_circuit_rejects_measured_base() {
        let mut base = Circuit::new(1);
        base.h(0).measure(0, 0);
        measurement_circuit(&base, &PauliString::z(1, 0));
    }
}
