use crate::matrix::{single_qubit_matrix, two_qubit_matrix, Matrix2, Matrix4};
use crate::{Complex, Counts, SimError};
use qrcc_circuit::observable::{Pauli, PauliObservable, PauliString};
use qrcc_circuit::{Circuit, Gate, Operation, QubitId};
use rand::Rng;

/// An exact state-vector simulator over `n` qubits.
///
/// Qubit `i` corresponds to bit `i` of the basis-state index (qubit 0 is the
/// least-significant bit). The simulator supports all gates of the IR, plus
/// projective measurement and reset for trajectory-style execution.
///
/// ```rust
/// use qrcc_circuit::Circuit;
/// use qrcc_sim::StateVector;
///
/// let mut c = Circuit::new(2);
/// c.h(0).cx(0, 1);
/// let sv = StateVector::from_circuit(&c).unwrap();
/// assert!((sv.probabilities()[0b11] - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StateVector {
    num_qubits: usize,
    amps: Vec<Complex>,
}

/// The dense simulator's qubit limit: a `2^28`-amplitude vector is 4 GiB of
/// [`Complex`], the largest allocation appropriate for this reproduction.
/// Every width check in the crate ([`StateVector::try_new`],
/// [`StateVector::from_circuit`], branch enumeration, compiled programs)
/// funnels through this single constant and the typed
/// [`SimError::TooManyQubits`] path.
pub const MAX_QUBITS: usize = 28;

impl StateVector {
    /// The all-zeros state |0…0⟩ over `num_qubits` qubits.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::TooManyQubits`] if `num_qubits` exceeds
    /// [`MAX_QUBITS`].
    pub fn try_new(num_qubits: usize) -> Result<Self, SimError> {
        if num_qubits > MAX_QUBITS {
            return Err(SimError::TooManyQubits { required: num_qubits, available: MAX_QUBITS });
        }
        let mut amps = vec![Complex::ZERO; 1 << num_qubits];
        amps[0] = Complex::ONE;
        Ok(StateVector { num_qubits, amps })
    }

    /// The all-zeros state |0…0⟩ over `num_qubits` qubits.
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits > MAX_QUBITS`; use [`StateVector::try_new`] for
    /// the typed-error path.
    pub fn new(num_qubits: usize) -> Self {
        StateVector::try_new(num_qubits)
            .unwrap_or_else(|_| panic!("state-vector simulation limited to {MAX_QUBITS} qubits"))
    }

    /// Builds the state produced by running the unitary part of `circuit`
    /// from |0…0⟩.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NonUnitaryCircuit`] if the circuit contains a
    /// measurement or reset, and [`SimError::TooManyQubits`] if it exceeds
    /// [`MAX_QUBITS`].
    pub fn from_circuit(circuit: &Circuit) -> Result<Self, SimError> {
        let mut sv = StateVector::try_new(circuit.num_qubits())?;
        sv.apply_circuit(circuit)?;
        Ok(sv)
    }

    /// Mutable access to the raw amplitudes for in-crate kernel sweeps.
    pub(crate) fn amps_mut(&mut self) -> &mut [Complex] {
        &mut self.amps
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The raw amplitudes (length `2^n`).
    pub fn amplitudes(&self) -> &[Complex] {
        &self.amps
    }

    /// The amplitude of basis state `index`.
    pub fn amplitude(&self, index: usize) -> Complex {
        self.amps[index]
    }

    /// The 2-norm of the state (1.0 for a normalised state).
    pub fn norm(&self) -> f64 {
        self.amps.iter().map(Complex::norm_sqr).sum::<f64>().sqrt()
    }

    /// The inner product ⟨self|other⟩.
    ///
    /// # Panics
    ///
    /// Panics if the qubit counts differ.
    pub fn inner(&self, other: &StateVector) -> Complex {
        assert_eq!(self.num_qubits, other.num_qubits, "state widths differ");
        let mut acc = Complex::ZERO;
        for (a, b) in self.amps.iter().zip(&other.amps) {
            acc += a.conj() * *b;
        }
        acc
    }

    /// Applies a single-qubit matrix to `qubit`.
    pub fn apply_matrix1(&mut self, m: &Matrix2, qubit: QubitId) {
        let q = qubit.index();
        debug_assert!(q < self.num_qubits);
        let bit = 1usize << q;
        let dim = self.amps.len();
        let mut i = 0;
        while i < dim {
            if i & bit == 0 {
                let j = i | bit;
                let a0 = self.amps[i];
                let a1 = self.amps[j];
                self.amps[i] = m[0][0] * a0 + m[0][1] * a1;
                self.amps[j] = m[1][0] * a0 + m[1][1] * a1;
            }
            i += 1;
        }
    }

    /// Applies a two-qubit matrix to `(first, second)` using the convention
    /// that the basis index of the matrix is `(bit_first << 1) | bit_second`.
    pub fn apply_matrix2(&mut self, m: &Matrix4, first: QubitId, second: QubitId) {
        let qa = first.index();
        let qb = second.index();
        debug_assert!(qa < self.num_qubits && qb < self.num_qubits && qa != qb);
        let bit_a = 1usize << qa;
        let bit_b = 1usize << qb;
        let dim = self.amps.len();
        for i in 0..dim {
            if i & bit_a == 0 && i & bit_b == 0 {
                let i00 = i;
                let i01 = i | bit_b;
                let i10 = i | bit_a;
                let i11 = i | bit_a | bit_b;
                let v = [self.amps[i00], self.amps[i01], self.amps[i10], self.amps[i11]];
                let mut out = [Complex::ZERO; 4];
                for (r, out_r) in out.iter_mut().enumerate() {
                    for (c, v_c) in v.iter().enumerate() {
                        *out_r += m[r][c] * *v_c;
                    }
                }
                self.amps[i00] = out[0];
                self.amps[i01] = out[1];
                self.amps[i10] = out[2];
                self.amps[i11] = out[3];
            }
        }
    }

    /// Applies a gate to the given qubits.
    ///
    /// # Panics
    ///
    /// Panics if the number of qubits does not match the gate's arity.
    pub fn apply_gate(&mut self, gate: &Gate, qubits: &[QubitId]) {
        match (gate.num_qubits(), qubits) {
            (1, [q]) => self.apply_matrix1(&single_qubit_matrix(gate), *q),
            (2, [a, b]) => self.apply_matrix2(&two_qubit_matrix(gate), *a, *b),
            _ => panic!("gate {} applied to {} qubits", gate.name(), qubits.len()),
        }
    }

    /// Applies every unitary operation of `circuit` in order (barriers are
    /// skipped).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NonUnitaryCircuit`] on the first measurement or
    /// reset encountered.
    pub fn apply_circuit(&mut self, circuit: &Circuit) -> Result<(), SimError> {
        for (index, op) in circuit.operations().iter().enumerate() {
            match op {
                Operation::Single { gate, qubit } => self.apply_gate(gate, &[*qubit]),
                Operation::Two { gate, qubits } => self.apply_gate(gate, qubits),
                Operation::Barrier { .. } => {}
                _ => return Err(SimError::NonUnitaryCircuit { index }),
            }
        }
        Ok(())
    }

    /// The probability of measuring `outcome` (`false` = 0, `true` = 1) on
    /// `qubit`.
    pub fn outcome_probability(&self, qubit: QubitId, outcome: bool) -> f64 {
        let bit = 1usize << qubit.index();
        self.amps
            .iter()
            .enumerate()
            .filter(|(i, _)| ((i & bit) != 0) == outcome)
            .map(|(_, a)| a.norm_sqr())
            .sum()
    }

    /// Projects `qubit` onto `outcome`, renormalising the state, and returns
    /// the probability of that outcome before projection.
    ///
    /// When the probability is (numerically) zero the state is left zeroed
    /// and `0.0` is returned; callers should discard such branches.
    pub fn project(&mut self, qubit: QubitId, outcome: bool) -> f64 {
        let bit = 1usize << qubit.index();
        let prob = self.outcome_probability(qubit, outcome);
        if prob <= f64::EPSILON {
            for a in &mut self.amps {
                *a = Complex::ZERO;
            }
            return 0.0;
        }
        let scale = 1.0 / prob.sqrt();
        for (i, a) in self.amps.iter_mut().enumerate() {
            if ((i & bit) != 0) == outcome {
                *a = a.scale(scale);
            } else {
                *a = Complex::ZERO;
            }
        }
        prob
    }

    /// Measures `qubit` in the computational basis, collapsing the state, and
    /// returns the outcome.
    pub fn measure(&mut self, qubit: QubitId, rng: &mut impl Rng) -> bool {
        let p1 = self.outcome_probability(qubit, true);
        let outcome = rng.gen::<f64>() < p1;
        self.project(qubit, outcome);
        outcome
    }

    /// Resets `qubit` to |0⟩ (measure, then flip if the outcome was 1).
    pub fn reset(&mut self, qubit: QubitId, rng: &mut impl Rng) {
        let outcome = self.measure(qubit, rng);
        if outcome {
            self.apply_gate(&Gate::X, &[qubit]);
        }
    }

    /// The probability of every basis state.
    pub fn probabilities(&self) -> Vec<f64> {
        self.amps.iter().map(Complex::norm_sqr).collect()
    }

    /// Samples `shots` outcomes of measuring all qubits, as a [`Counts`]
    /// histogram keyed by qubit index.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ZeroShots`] if `shots == 0`.
    pub fn sample_counts(&self, shots: u64, rng: &mut impl Rng) -> Result<Counts, SimError> {
        if shots == 0 {
            return Err(SimError::ZeroShots);
        }
        let probs = self.probabilities();
        let mut cumulative = Vec::with_capacity(probs.len());
        let mut acc = 0.0;
        for p in &probs {
            acc += p;
            cumulative.push(acc);
        }
        let total = acc.max(f64::MIN_POSITIVE);
        let mut counts = Counts::new(self.num_qubits);
        for _ in 0..shots {
            let r: f64 = rng.gen::<f64>() * total;
            let idx = cumulative.partition_point(|&c| c < r).min(probs.len() - 1);
            counts.record(idx as u64, 1);
        }
        Ok(counts)
    }

    /// The expectation value ⟨ψ|P|ψ⟩ of a Pauli string.
    ///
    /// # Panics
    ///
    /// Panics if the string's width differs from the state's.
    pub fn expectation_pauli(&self, string: &PauliString) -> f64 {
        assert_eq!(string.num_qubits(), self.num_qubits, "pauli string width mismatch");
        // Compute P|ψ⟩ then take the real part of ⟨ψ|Pψ⟩.
        let mut transformed = self.amps.clone();
        for (q, pauli) in string.paulis().iter().enumerate() {
            let bit = 1usize << q;
            match pauli {
                Pauli::I => {}
                Pauli::X => {
                    for i in 0..transformed.len() {
                        if i & bit == 0 {
                            transformed.swap(i, i | bit);
                        }
                    }
                }
                Pauli::Y => {
                    for i in 0..transformed.len() {
                        if i & bit == 0 {
                            let j = i | bit;
                            let low = transformed[i];
                            let high = transformed[j];
                            // Y = [[0, -i], [i, 0]] acting on (low, high)
                            transformed[i] = Complex::new(0.0, -1.0) * high;
                            transformed[j] = Complex::i() * low;
                        }
                    }
                }
                Pauli::Z => {
                    for (i, amp) in transformed.iter_mut().enumerate() {
                        if i & bit != 0 {
                            *amp = -*amp;
                        }
                    }
                }
            }
        }
        let mut acc = Complex::ZERO;
        for (a, t) in self.amps.iter().zip(&transformed) {
            acc += a.conj() * *t;
        }
        acc.re
    }

    /// The expectation value of a weighted Pauli observable.
    ///
    /// # Panics
    ///
    /// Panics if the observable's width differs from the state's.
    pub fn expectation(&self, observable: &PauliObservable) -> f64 {
        observable
            .terms()
            .iter()
            .map(|(coeff, string)| coeff * self.expectation_pauli(string))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn q(i: usize) -> QubitId {
        QubitId::new(i)
    }

    #[test]
    fn initial_state_is_all_zeros() {
        let sv = StateVector::new(3);
        assert_eq!(sv.amplitude(0), Complex::ONE);
        assert!((sv.norm() - 1.0).abs() < 1e-12);
        assert_eq!(sv.probabilities()[0], 1.0);
    }

    #[test]
    fn x_gate_flips_qubit() {
        let mut sv = StateVector::new(2);
        sv.apply_gate(&Gate::X, &[q(1)]);
        assert!((sv.probabilities()[0b10] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bell_state_probabilities_and_correlation() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let sv = StateVector::from_circuit(&c).unwrap();
        let p = sv.probabilities();
        assert!((p[0b00] - 0.5).abs() < 1e-12);
        assert!((p[0b11] - 0.5).abs() < 1e-12);
        assert!(p[0b01].abs() < 1e-12);
        // ZZ expectation of a Bell state is +1
        assert!((sv.expectation_pauli(&PauliString::zz(2, 0, 1)) - 1.0).abs() < 1e-12);
        // single-qubit Z expectation is 0
        assert!(sv.expectation_pauli(&PauliString::z(2, 0)).abs() < 1e-12);
    }

    #[test]
    fn ghz_from_circuit_matches_manual_application() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2);
        let sv = StateVector::from_circuit(&c).unwrap();
        let p = sv.probabilities();
        assert!((p[0] - 0.5).abs() < 1e-12);
        assert!((p[7] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cx_control_and_target_order() {
        // X on qubit 1 (control) then cx(1, 0) must flip qubit 0.
        let mut sv = StateVector::new(2);
        sv.apply_gate(&Gate::X, &[q(1)]);
        sv.apply_gate(&Gate::Cx, &[q(1), q(0)]);
        assert!((sv.probabilities()[0b11] - 1.0).abs() < 1e-12);
        // X on qubit 0 (target position) with control 1 unset does nothing.
        let mut sv = StateVector::new(2);
        sv.apply_gate(&Gate::X, &[q(0)]);
        sv.apply_gate(&Gate::Cx, &[q(1), q(0)]);
        assert!((sv.probabilities()[0b01] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn swap_exchanges_amplitudes() {
        let mut sv = StateVector::new(2);
        sv.apply_gate(&Gate::X, &[q(0)]);
        sv.apply_gate(&Gate::Swap, &[q(0), q(1)]);
        assert!((sv.probabilities()[0b10] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rzz_is_diagonal_and_phases_odd_parity() {
        let theta = 0.8;
        let mut plus = Circuit::new(2);
        plus.h(0).h(1).rzz(theta, 0, 1);
        let sv = StateVector::from_circuit(&plus).unwrap();
        // diagonal gate keeps uniform probabilities
        for p in sv.probabilities() {
            assert!((p - 0.25).abs() < 1e-12);
        }
        // and the single-qubit X expectation reflects the rotation angle:
        // RZZ(θ) maps X⊗I to cosθ·X⊗I − sinθ·Y⊗Z, so on |++⟩ it is cosθ.
        let e = sv.expectation_pauli(&PauliString::x(2, 0));
        assert!((e - theta.cos()).abs() < 1e-12);
        // X⊗X commutes with Z⊗Z, so its expectation stays +1.
        let exx = sv.expectation_pauli(&PauliString::from_paulis(vec![Pauli::X, Pauli::X]));
        assert!((exx - 1.0).abs() < 1e-12);
    }

    #[test]
    fn circuit_inverse_returns_to_zero_state() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).t(1).cz(1, 2).ry(0.3, 2).rzz(0.7, 0, 2).sx(1);
        let mut sv = StateVector::from_circuit(&c).unwrap();
        sv.apply_circuit(&c.inverse().unwrap()).unwrap();
        assert!((sv.probabilities()[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn norm_is_preserved_by_random_unitaries() {
        let mut c = Circuit::new(4);
        c.h(0).cx(0, 1).ry(1.1, 2).rzz(0.4, 1, 2).cp(0.9, 2, 3).sx(3).cy(3, 0);
        let sv = StateVector::from_circuit(&c).unwrap();
        assert!((sv.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn measurement_collapses_state() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let mut sv = StateVector::from_circuit(&c).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let outcome = sv.measure(q(0), &mut rng);
        // after measuring one half of a Bell pair, the other is perfectly correlated
        assert_eq!(sv.outcome_probability(q(1), outcome), 1.0);
        assert!((sv.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn project_returns_outcome_probability() {
        let mut c = Circuit::new(1);
        c.ry(1.0, 0);
        let sv = StateVector::from_circuit(&c).unwrap();
        let p1 = sv.outcome_probability(q(0), true);
        let mut projected = sv.clone();
        let p = projected.project(q(0), true);
        assert!((p - p1).abs() < 1e-12);
        assert!((projected.outcome_probability(q(0), true) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn project_onto_impossible_outcome_zeroes_state() {
        let mut sv = StateVector::new(1);
        let p = sv.project(q(0), true);
        assert_eq!(p, 0.0);
        assert_eq!(sv.norm(), 0.0);
    }

    #[test]
    fn reset_always_yields_zero_state_on_that_qubit() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..5 {
            let mut sv = StateVector::from_circuit(&c).unwrap();
            sv.reset(q(0), &mut rng);
            assert!(sv.outcome_probability(q(0), true) < 1e-12);
        }
    }

    #[test]
    fn sampling_matches_exact_distribution() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let sv = StateVector::from_circuit(&c).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let counts = sv.sample_counts(20_000, &mut rng).unwrap();
        assert_eq!(counts.shots(), 20_000);
        assert!(counts.total_variation_distance(&sv.probabilities()) < 0.02);
    }

    #[test]
    fn sampling_zero_shots_is_an_error() {
        let sv = StateVector::new(1);
        let mut rng = StdRng::seed_from_u64(5);
        assert!(matches!(sv.sample_counts(0, &mut rng), Err(SimError::ZeroShots)));
    }

    #[test]
    fn from_circuit_rejects_measurements() {
        let mut c = Circuit::new(1);
        c.h(0).measure(0, 0);
        assert!(matches!(
            StateVector::from_circuit(&c),
            Err(SimError::NonUnitaryCircuit { index: 1 })
        ));
    }

    #[test]
    fn pauli_expectations_of_plus_state() {
        let mut c = Circuit::new(1);
        c.h(0);
        let sv = StateVector::from_circuit(&c).unwrap();
        assert!((sv.expectation_pauli(&PauliString::x(1, 0)) - 1.0).abs() < 1e-12);
        assert!(sv.expectation_pauli(&PauliString::z(1, 0)).abs() < 1e-12);
        assert!(sv.expectation_pauli(&PauliString::y(1, 0)).abs() < 1e-12);
    }

    #[test]
    fn y_expectation_of_i_state() {
        // |i> = S H |0> has <Y> = +1
        let mut c = Circuit::new(1);
        c.h(0).s(0);
        let sv = StateVector::from_circuit(&c).unwrap();
        assert!((sv.expectation_pauli(&PauliString::y(1, 0)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn observable_expectation_combines_terms_linearly() {
        let mut c = Circuit::new(2);
        c.x(0);
        let sv = StateVector::from_circuit(&c).unwrap();
        let mut obs = PauliObservable::new(2);
        obs.add_term(2.0, PauliString::z(2, 0)); // <Z0> = -1
        obs.add_term(3.0, PauliString::z(2, 1)); // <Z1> = +1
        obs.add_term(0.5, PauliString::identity(2)); // constant
        assert!((sv.expectation(&obs) - (-2.0 + 3.0 * 1.0 + 0.5)).abs() < 1e-12);
    }

    #[test]
    fn inner_product_of_orthogonal_states_is_zero() {
        let a = StateVector::new(1);
        let mut b = StateVector::new(1);
        b.apply_gate(&Gate::X, &[q(0)]);
        assert!(a.inner(&b).abs() < 1e-12);
        assert!((a.inner(&a).re - 1.0).abs() < 1e-12);
    }
}
