//! Unitary matrices of the gate set.
//!
//! Conventions:
//!
//! * Single-qubit matrices are `[[row0], [row1]]` over the basis {|0⟩, |1⟩}.
//! * Two-qubit matrices act on an [`Operation::Two`](qrcc_circuit::Operation)
//!   with qubit order `[a, b]`; the 4-dimensional basis index is
//!   `(bit_a << 1) | bit_b`, i.e. the *first* listed qubit is the high bit.
//!   For controlled gates the first qubit is the control.

use crate::Complex;
use qrcc_circuit::Gate;

/// A 2×2 complex matrix.
pub type Matrix2 = [[Complex; 2]; 2];
/// A 4×4 complex matrix.
pub type Matrix4 = [[Complex; 4]; 4];

const fn c(re: f64, im: f64) -> Complex {
    Complex::new(re, im)
}

/// The matrix of a single-qubit gate.
///
/// # Panics
///
/// Panics if `gate` is a two-qubit gate; use [`two_qubit_matrix`] instead.
pub fn single_qubit_matrix(gate: &Gate) -> Matrix2 {
    use Gate::*;
    let z = Complex::ZERO;
    let one = Complex::ONE;
    let i = Complex::i();
    let s2 = std::f64::consts::FRAC_1_SQRT_2;
    match *gate {
        I => [[one, z], [z, one]],
        H => [[c(s2, 0.0), c(s2, 0.0)], [c(s2, 0.0), c(-s2, 0.0)]],
        X => [[z, one], [one, z]],
        Y => [[z, c(0.0, -1.0)], [i, z]],
        Z => [[one, z], [z, c(-1.0, 0.0)]],
        S => [[one, z], [z, i]],
        Sdg => [[one, z], [z, c(0.0, -1.0)]],
        T => [[one, z], [z, Complex::from_polar(1.0, std::f64::consts::FRAC_PI_4)]],
        Tdg => [[one, z], [z, Complex::from_polar(1.0, -std::f64::consts::FRAC_PI_4)]],
        SqrtX => [[c(0.5, 0.5), c(0.5, -0.5)], [c(0.5, -0.5), c(0.5, 0.5)]],
        Rx(t) => {
            let (ct, st) = ((t / 2.0).cos(), (t / 2.0).sin());
            [[c(ct, 0.0), c(0.0, -st)], [c(0.0, -st), c(ct, 0.0)]]
        }
        Ry(t) => {
            let (ct, st) = ((t / 2.0).cos(), (t / 2.0).sin());
            [[c(ct, 0.0), c(-st, 0.0)], [c(st, 0.0), c(ct, 0.0)]]
        }
        Rz(t) => [[Complex::from_polar(1.0, -t / 2.0), z], [z, Complex::from_polar(1.0, t / 2.0)]],
        Phase(l) => [[one, z], [z, Complex::from_polar(1.0, l)]],
        U3(theta, phi, lambda) => {
            let (ct, st) = ((theta / 2.0).cos(), (theta / 2.0).sin());
            [
                [c(ct, 0.0), -Complex::from_polar(st, lambda)],
                [Complex::from_polar(st, phi), Complex::from_polar(ct, phi + lambda)],
            ]
        }
        _ => panic!("{} is not a single-qubit gate", gate.name()),
    }
}

/// The matrix of a two-qubit gate over basis index `(bit_first << 1) | bit_second`.
///
/// # Panics
///
/// Panics if `gate` is a single-qubit gate; use [`single_qubit_matrix`] instead.
pub fn two_qubit_matrix(gate: &Gate) -> Matrix4 {
    use Gate::*;
    let z = Complex::ZERO;
    let one = Complex::ONE;
    let mut m = [[z; 4]; 4];
    match *gate {
        Cx => {
            // control = first (high bit), target = second (low bit)
            m[0][0] = one;
            m[1][1] = one;
            m[2][3] = one;
            m[3][2] = one;
        }
        Cy => {
            m[0][0] = one;
            m[1][1] = one;
            m[2][3] = c(0.0, -1.0);
            m[3][2] = Complex::i();
        }
        Cz => {
            m[0][0] = one;
            m[1][1] = one;
            m[2][2] = one;
            m[3][3] = c(-1.0, 0.0);
        }
        Swap => {
            m[0][0] = one;
            m[1][2] = one;
            m[2][1] = one;
            m[3][3] = one;
        }
        Rzz(t) => {
            let plus = Complex::from_polar(1.0, t / 2.0);
            let minus = Complex::from_polar(1.0, -t / 2.0);
            m[0][0] = minus;
            m[1][1] = plus;
            m[2][2] = plus;
            m[3][3] = minus;
        }
        Rxx(t) => {
            let (ct, st) = ((t / 2.0).cos(), (t / 2.0).sin());
            let cc = c(ct, 0.0);
            let ms = c(0.0, -st);
            m[0][0] = cc;
            m[0][3] = ms;
            m[1][1] = cc;
            m[1][2] = ms;
            m[2][1] = ms;
            m[2][2] = cc;
            m[3][0] = ms;
            m[3][3] = cc;
        }
        Ryy(t) => {
            let (ct, st) = ((t / 2.0).cos(), (t / 2.0).sin());
            let cc = c(ct, 0.0);
            m[0][0] = cc;
            m[0][3] = c(0.0, st);
            m[1][1] = cc;
            m[1][2] = c(0.0, -st);
            m[2][1] = c(0.0, -st);
            m[2][2] = cc;
            m[3][0] = c(0.0, st);
            m[3][3] = cc;
        }
        CPhase(l) => {
            m[0][0] = one;
            m[1][1] = one;
            m[2][2] = one;
            m[3][3] = Complex::from_polar(1.0, l);
        }
        _ => panic!("{} is not a two-qubit gate", gate.name()),
    }
    m
}

/// Multiplies two 2×2 matrices.
pub fn matmul2(a: &Matrix2, b: &Matrix2) -> Matrix2 {
    let mut out = [[Complex::ZERO; 2]; 2];
    for (i, row) in out.iter_mut().enumerate() {
        for (j, cell) in row.iter_mut().enumerate() {
            for k in 0..2 {
                *cell += a[i][k] * b[k][j];
            }
        }
    }
    out
}

/// The conjugate transpose of a 2×2 matrix.
pub fn dagger2(a: &Matrix2) -> Matrix2 {
    let mut out = [[Complex::ZERO; 2]; 2];
    for i in 0..2 {
        for j in 0..2 {
            out[i][j] = a[j][i].conj();
        }
    }
    out
}

/// Whether a 2×2 matrix is unitary within tolerance `tol`.
pub fn is_unitary2(a: &Matrix2, tol: f64) -> bool {
    let product = matmul2(a, &dagger2(a));
    let id = [[Complex::ONE, Complex::ZERO], [Complex::ZERO, Complex::ONE]];
    (0..2).all(|i| (0..2).all(|j| product[i][j].approx_eq(id[i][j], tol)))
}

/// Multiplies two 4×4 matrices.
pub fn matmul4(a: &Matrix4, b: &Matrix4) -> Matrix4 {
    let mut out = [[Complex::ZERO; 4]; 4];
    for (i, row) in out.iter_mut().enumerate() {
        for (j, cell) in row.iter_mut().enumerate() {
            for k in 0..4 {
                *cell += a[i][k] * b[k][j];
            }
        }
    }
    out
}

/// The conjugate transpose of a 4×4 matrix.
pub fn dagger4(a: &Matrix4) -> Matrix4 {
    let mut out = [[Complex::ZERO; 4]; 4];
    for i in 0..4 {
        for j in 0..4 {
            out[i][j] = a[j][i].conj();
        }
    }
    out
}

/// Whether a 4×4 matrix is unitary within tolerance `tol`.
pub fn is_unitary4(a: &Matrix4, tol: f64) -> bool {
    let product = matmul4(a, &dagger4(a));
    (0..4).all(|i| {
        (0..4).all(|j| {
            let expected = if i == j { Complex::ONE } else { Complex::ZERO };
            product[i][j].approx_eq(expected, tol)
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-12;

    #[test]
    fn every_single_qubit_gate_is_unitary() {
        let gates = [
            Gate::I,
            Gate::H,
            Gate::X,
            Gate::Y,
            Gate::Z,
            Gate::S,
            Gate::Sdg,
            Gate::T,
            Gate::Tdg,
            Gate::SqrtX,
            Gate::Rx(0.37),
            Gate::Ry(-1.1),
            Gate::Rz(2.2),
            Gate::Phase(0.6),
            Gate::U3(0.3, 1.1, -0.4),
        ];
        for g in gates {
            assert!(is_unitary2(&single_qubit_matrix(&g), TOL), "{} not unitary", g.name());
        }
    }

    #[test]
    fn every_two_qubit_gate_is_unitary() {
        let gates = [
            Gate::Cx,
            Gate::Cy,
            Gate::Cz,
            Gate::Swap,
            Gate::Rzz(0.7),
            Gate::Rxx(-0.3),
            Gate::Ryy(1.9),
            Gate::CPhase(0.8),
        ];
        for g in gates {
            assert!(is_unitary4(&two_qubit_matrix(&g), TOL), "{} not unitary", g.name());
        }
    }

    #[test]
    fn dagger_matrices_invert_their_gates() {
        for g in [Gate::S, Gate::T, Gate::Rx(0.4), Gate::Rz(1.3), Gate::U3(0.5, 0.2, -0.7)] {
            let m = single_qubit_matrix(&g);
            let md = single_qubit_matrix(&g.dagger());
            let product = matmul2(&m, &md);
            // product must be the identity up to a global phase
            let phase = product[0][0];
            assert!(phase.abs() > 1.0 - 1e-9, "{}", g.name());
            assert!(product[0][1].approx_eq(Complex::ZERO, 1e-9));
            assert!(product[1][0].approx_eq(Complex::ZERO, 1e-9));
            assert!(product[1][1].approx_eq(phase, 1e-9));
        }
    }

    #[test]
    fn sqrt_x_squares_to_x() {
        let sx = single_qubit_matrix(&Gate::SqrtX);
        let x = single_qubit_matrix(&Gate::X);
        let sq = matmul2(&sx, &sx);
        for i in 0..2 {
            for j in 0..2 {
                assert!(sq[i][j].approx_eq(x[i][j], TOL));
            }
        }
    }

    #[test]
    fn cx_flips_target_when_control_set() {
        let m = two_qubit_matrix(&Gate::Cx);
        // |10> (control=1, target=0) -> |11>
        assert!(m[3][2].approx_eq(Complex::ONE, TOL));
        // |00> unchanged
        assert!(m[0][0].approx_eq(Complex::ONE, TOL));
    }

    #[test]
    fn cz_only_phases_the_11_state() {
        let m = two_qubit_matrix(&Gate::Cz);
        assert!(m[3][3].approx_eq(Complex::new(-1.0, 0.0), TOL));
        for (i, row) in m.iter().enumerate().take(3) {
            assert!(row[i].approx_eq(Complex::ONE, TOL));
        }
    }

    #[test]
    fn rzz_diagonal_phases() {
        let t = 0.9;
        let m = two_qubit_matrix(&Gate::Rzz(t));
        assert!(m[0][0].approx_eq(Complex::from_polar(1.0, -t / 2.0), TOL));
        assert!(m[1][1].approx_eq(Complex::from_polar(1.0, t / 2.0), TOL));
        assert!(m[3][3].approx_eq(Complex::from_polar(1.0, -t / 2.0), TOL));
    }

    #[test]
    #[should_panic(expected = "not a single-qubit gate")]
    fn single_matrix_rejects_two_qubit_gate() {
        single_qubit_matrix(&Gate::Cx);
    }

    #[test]
    #[should_panic(expected = "not a two-qubit gate")]
    fn two_qubit_matrix_rejects_single_qubit_gate() {
        two_qubit_matrix(&Gate::H);
    }
}
