use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A double-precision complex number.
///
/// A deliberately small, self-contained implementation (the workspace avoids
/// external numeric crates) providing exactly the operations the simulator
/// needs.
///
/// ```rust
/// use qrcc_sim::Complex;
///
/// let z = Complex::new(1.0, 2.0) * Complex::i();
/// assert_eq!(z, Complex::new(-2.0, 1.0));
/// assert!((Complex::from_polar(1.0, std::f64::consts::PI).re + 1.0).abs() < 1e-15);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity 0.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity 1.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };

    /// Creates a complex number from real and imaginary parts.
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// The imaginary unit `i`.
    pub const fn i() -> Self {
        Complex { re: 0.0, im: 1.0 }
    }

    /// A purely real number.
    pub const fn real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Builds `r · e^{iθ}`.
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex { re: r * theta.cos(), im: r * theta.sin() }
    }

    /// The complex conjugate.
    pub fn conj(&self) -> Self {
        Complex { re: self.re, im: -self.im }
    }

    /// The squared magnitude `|z|²`.
    pub fn norm_sqr(&self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// The magnitude `|z|`.
    pub fn abs(&self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Multiplies by a real scalar.
    pub fn scale(&self, s: f64) -> Self {
        Complex { re: self.re * s, im: self.im * s }
    }

    /// Whether both parts are within `tol` of `other`.
    pub fn approx_eq(&self, other: Complex, tol: f64) -> bool {
        (self.re - other.re).abs() <= tol && (self.im - other.im).abs() <= tol
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex { re: self.re + rhs.re, im: self.im + rhs.im }
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex { re: self.re - rhs.re, im: self.im - rhs.im }
    }
}

impl SubAssign for Complex {
    fn sub_assign(&mut self, rhs: Complex) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex { re: self.re * rhs.re - self.im * rhs.im, im: self.re * rhs.im + self.im * rhs.re }
    }
}

impl MulAssign for Complex {
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    fn div(self, rhs: f64) -> Complex {
        Complex { re: self.re / rhs, im: self.im / rhs }
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex { re: -self.re, im: -self.im }
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::real(re)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{:.6}+{:.6}i", self.re, self.im)
        } else {
            write!(f, "{:.6}-{:.6}i", self.re, -self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn arithmetic_identities() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(-0.5, 3.0);
        assert_eq!(a + b, Complex::new(0.5, 5.0));
        assert_eq!(a - b, Complex::new(1.5, -1.0));
        assert_eq!(a * Complex::ONE, a);
        assert_eq!(a + Complex::ZERO, a);
        assert_eq!(-a, Complex::new(-1.0, -2.0));
    }

    #[test]
    fn multiplication_matches_hand_computation() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        // (1+2i)(3-i) = 3 - i + 6i - 2i^2 = 5 + 5i
        assert_eq!(a * b, Complex::new(5.0, 5.0));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert_eq!(Complex::i() * Complex::i(), Complex::new(-1.0, 0.0));
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex::from_polar(2.0, PI / 3.0);
        assert!((z.abs() - 2.0).abs() < 1e-12);
        assert!(z.approx_eq(Complex::new(1.0, 3.0_f64.sqrt()), 1e-12));
    }

    #[test]
    fn conjugate_and_norm() {
        let z = Complex::new(3.0, -4.0);
        assert_eq!(z.conj(), Complex::new(3.0, 4.0));
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(z.abs(), 5.0);
        assert_eq!((z * z.conj()).re, 25.0);
    }

    #[test]
    fn scalar_operations() {
        let z = Complex::new(1.0, -1.0);
        assert_eq!(z * 2.0, Complex::new(2.0, -2.0));
        assert_eq!(z / 2.0, Complex::new(0.5, -0.5));
        assert_eq!(Complex::from(2.5), Complex::new(2.5, 0.0));
    }

    #[test]
    fn display_formats_sign() {
        assert!(Complex::new(1.0, -2.0).to_string().contains('-'));
        assert!(Complex::new(1.0, 2.0).to_string().contains('+'));
    }
}
