//! State-vector simulation substrate for the QRCC reproduction.
//!
//! The paper executes subcircuits on IBM quantum devices and verifies results
//! against Qiskit's state-vector and shot-based simulators. This crate is the
//! stand-in for all of that:
//!
//! * [`Complex`] — minimal complex arithmetic (no external numeric crates).
//! * [`StateVector`] — an exact state-vector simulator supporting every gate
//!   of the IR plus mid-circuit measurement and reset (required for qubit
//!   reuse), shot sampling and Pauli-observable expectation values.
//! * [`branching`] — exact enumeration of measurement branches, used by the
//!   gate-cut reconstruction where the measurement outcome β weights the
//!   expectation value.
//! * [`noise`] — stochastic-Pauli (depolarizing) and readout noise models.
//! * [`device`] — a small simulated quantum device with a qubit budget,
//!   optional noise and shots-based execution, standing in for IBM Lagos.
//! * [`Counts`] — measurement histograms.
//!
//! # Example
//!
//! ```rust
//! use qrcc_circuit::Circuit;
//! use qrcc_sim::StateVector;
//!
//! let mut bell = Circuit::new(2);
//! bell.h(0).cx(0, 1);
//! let sv = StateVector::from_circuit(&bell).unwrap();
//! let probs = sv.probabilities();
//! assert!((probs[0] - 0.5).abs() < 1e-12);
//! assert!((probs[3] - 0.5).abs() < 1e-12);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod complex;
mod counts;
mod error;
mod statevector;

pub mod branching;
pub mod device;
pub mod expectation;
pub mod matrix;
pub mod noise;

pub use complex::Complex;
pub use counts::Counts;
pub use error::SimError;
pub use statevector::StateVector;
