//! State-vector simulation substrate for the QRCC reproduction.
//!
//! The paper executes subcircuits on IBM quantum devices and verifies results
//! against Qiskit's state-vector and shot-based simulators. This crate is the
//! stand-in for all of that, organised around a **compile-then-execute**
//! flow:
//!
//! 1. **Lower** — [`compile`] turns a circuit into a flat
//!    [`KernelProgram`](compile::KernelProgram): adjacent single-qubit gates
//!    fuse into one 2×2 matrix, diagonal/permutation/controlled-flip gates
//!    specialize to cheaper sweeps, the rest become cache-blocked dense
//!    kernels. Every sweep is rayon-chunked above a size threshold with
//!    disjoint write sets, so results are bit-identical for any thread count.
//! 2. **Cache** — [`compile::KernelCache`] keys compiled bodies by
//!    [`Circuit::structural_hash`](qrcc_circuit::Circuit::structural_hash);
//!    QRCC's deduplicated variant batches differ only in their init prologue
//!    and measurement epilogue, so thousands of variants share one compiled
//!    body and only the frames are compiled per request.
//! 3. **Execute** — compiled programs run as exact unitaries
//!    ([`compile::FramedProgram::run_unitary`]), exact branch enumerations
//!    ([`compile::FramedProgram::enumerate_branches`]) or per-shot
//!    trajectories ([`device`]). The original per-gate interpreter remains
//!    available everywhere (construction-time opt-out, or the
//!    `QRCC_SIM_INTERPRETED=1` environment variable) and is the differential
//!    reference the compiled path is tested against.
//!
//! The pieces:
//!
//! * [`Complex`] — minimal complex arithmetic (no external numeric crates).
//! * [`StateVector`] — the exact simulator supporting every gate of the IR
//!   plus mid-circuit measurement and reset (required for qubit reuse), shot
//!   sampling and Pauli-observable expectation values. Widths are capped at
//!   [`MAX_QUBITS`] with a typed [`SimError::TooManyQubits`] error.
//! * [`compile`] — the kernel compiler, cache and [`compile::CompileStats`]
//!   coverage report described above.
//! * [`branching`] — exact interpreted enumeration of measurement branches,
//!   used by gate-cut reconstruction and as the compiled path's reference.
//! * [`noise`] — stochastic-Pauli (depolarizing) and readout noise models.
//!   Noisy execution always interprets gate-by-gate: per-gate noise anchors
//!   to gate boundaries, which fusion would erase.
//! * [`device`] — a small simulated quantum device with a qubit budget,
//!   optional noise and shots-based execution, standing in for IBM Lagos.
//! * [`Counts`] — measurement histograms.
//!
//! # Example
//!
//! ```rust
//! use qrcc_circuit::Circuit;
//! use qrcc_sim::compile::FramedProgram;
//! use qrcc_sim::StateVector;
//!
//! let mut bell = Circuit::new(2);
//! bell.h(0).cx(0, 1);
//! // interpreted and compiled paths agree
//! let interpreted = StateVector::from_circuit(&bell).unwrap();
//! let compiled = FramedProgram::compile(&bell).run_unitary().unwrap();
//! for (a, b) in interpreted.amplitudes().iter().zip(compiled.amplitudes()) {
//!     assert!((*a - *b).abs() < 1e-12);
//! }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod complex;
mod counts;
mod error;
mod statevector;

pub mod branching;
pub mod compile;
pub mod device;
pub mod expectation;
pub mod matrix;
pub mod noise;

pub use complex::Complex;
pub use counts::Counts;
pub use error::SimError;
pub use statevector::{StateVector, MAX_QUBITS};
