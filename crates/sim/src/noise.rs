//! Stochastic-Pauli (depolarizing) and readout noise models.
//!
//! The paper's Table 3 runs subcircuits on the IBM Lagos device, whose
//! dominant error sources are two-qubit gate errors (median 8.25e-3 for CNOT
//! when the experiment ran), single-qubit gate errors (2.6e-4 for √X), and
//! readout errors. This module substitutes a calibrated stochastic-Pauli
//! model applied per gate during trajectory simulation, which exercises the
//! same code path (noisy device execution vs QRCC's smaller subcircuits) and
//! reproduces the qualitative fidelity ordering.

use qrcc_circuit::{Gate, QubitId};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::StateVector;

/// Per-gate depolarizing and readout error rates.
///
/// ```rust
/// use qrcc_sim::noise::NoiseModel;
///
/// let lagos = NoiseModel::ibm_lagos_like();
/// assert!(lagos.two_qubit_error > lagos.single_qubit_error);
/// assert!(!lagos.is_noiseless());
/// assert!(NoiseModel::noiseless().is_noiseless());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseModel {
    /// Probability of a depolarizing event after each single-qubit gate.
    pub single_qubit_error: f64,
    /// Probability of a depolarizing event (on each involved qubit) after
    /// each two-qubit gate.
    pub two_qubit_error: f64,
    /// Probability of flipping each measured bit at readout.
    pub readout_error: f64,
}

impl NoiseModel {
    /// A noiseless model (all rates zero).
    pub fn noiseless() -> Self {
        NoiseModel { single_qubit_error: 0.0, two_qubit_error: 0.0, readout_error: 0.0 }
    }

    /// Error rates matching the IBM Lagos calibration quoted in the paper
    /// (CNOT median 8.25e-3, single-qubit √X 2.6e-4) plus a representative
    /// 1% readout error.
    pub fn ibm_lagos_like() -> Self {
        NoiseModel { single_qubit_error: 2.6e-4, two_qubit_error: 8.25e-3, readout_error: 1.0e-2 }
    }

    /// A uniform depolarizing model with the same rate for all gates and no
    /// readout error; useful for noise-sweep ablations.
    pub fn uniform(rate: f64) -> Self {
        NoiseModel { single_qubit_error: rate, two_qubit_error: rate, readout_error: 0.0 }
    }

    /// Whether every rate is zero.
    pub fn is_noiseless(&self) -> bool {
        self.single_qubit_error == 0.0 && self.two_qubit_error == 0.0 && self.readout_error == 0.0
    }

    /// The depolarizing probability associated with a gate of the given arity.
    pub fn gate_error(&self, two_qubit: bool) -> f64 {
        if two_qubit {
            self.two_qubit_error
        } else {
            self.single_qubit_error
        }
    }

    /// Applies stochastic-Pauli noise to `state` on each of `qubits` with the
    /// probability corresponding to the gate arity. Each affected qubit
    /// independently receives a uniformly random Pauli (X, Y or Z).
    pub fn apply_gate_noise(
        &self,
        state: &mut StateVector,
        qubits: &[QubitId],
        rng: &mut impl Rng,
    ) {
        let p = self.gate_error(qubits.len() == 2);
        if p <= 0.0 {
            return;
        }
        for q in qubits {
            if rng.gen::<f64>() < p {
                let pauli = match rng.gen_range(0..3) {
                    0 => Gate::X,
                    1 => Gate::Y,
                    _ => Gate::Z,
                };
                state.apply_gate(&pauli, &[*q]);
            }
        }
    }

    /// Applies readout error to a measured bit, flipping it with probability
    /// [`NoiseModel::readout_error`].
    pub fn apply_readout(&self, bit: bool, rng: &mut impl Rng) -> bool {
        if self.readout_error > 0.0 && rng.gen::<f64>() < self.readout_error {
            !bit
        } else {
            bit
        }
    }
}

impl Default for NoiseModel {
    fn default() -> Self {
        NoiseModel::noiseless()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn noiseless_model_never_perturbs_the_state() {
        let model = NoiseModel::noiseless();
        let mut sv = StateVector::new(2);
        let reference = sv.clone();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            model.apply_gate_noise(&mut sv, &[QubitId::new(0), QubitId::new(1)], &mut rng);
        }
        assert_eq!(sv, reference);
        assert!(model.apply_readout(true, &mut rng));
        assert!(!model.apply_readout(false, &mut rng));
    }

    #[test]
    fn certain_noise_always_perturbs() {
        let model = NoiseModel::uniform(1.0);
        let mut sv = StateVector::new(1);
        let mut rng = StdRng::seed_from_u64(2);
        model.apply_gate_noise(&mut sv, &[QubitId::new(0)], &mut rng);
        // A Pauli applied to |0> gives either |1> (X, Y) or a phase (Z); the
        // state is still normalised.
        assert!((sv.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn readout_error_flips_at_the_configured_rate() {
        let model =
            NoiseModel { single_qubit_error: 0.0, two_qubit_error: 0.0, readout_error: 0.3 };
        let mut rng = StdRng::seed_from_u64(3);
        let flips = (0..20_000).filter(|_| model.apply_readout(false, &mut rng)).count();
        let rate = flips as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "observed flip rate {rate}");
    }

    #[test]
    fn lagos_preset_rates() {
        let m = NoiseModel::ibm_lagos_like();
        assert!((m.two_qubit_error - 8.25e-3).abs() < 1e-12);
        assert!((m.single_qubit_error - 2.6e-4).abs() < 1e-12);
        assert_eq!(m.gate_error(true), m.two_qubit_error);
        assert_eq!(m.gate_error(false), m.single_qubit_error);
    }
}
