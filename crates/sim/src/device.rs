//! A simulated quantum device with a qubit budget, optional noise, and
//! shots-based execution — the stand-in for the small quantum computers
//! (e.g. the 7-qubit IBM Lagos and hypothetical 3/4-qubit devices) the paper
//! runs subcircuits on.

use crate::compile::{interpreted_forced_by_env, CompileStats, FramedProgram, Kernel, KernelCache};
use crate::expectation::{expectation_from_counts, measurement_circuit};
use crate::noise::NoiseModel;
use crate::{Counts, SimError, StateVector};
use qrcc_circuit::observable::PauliObservable;
use qrcc_circuit::{Circuit, Operation, QubitId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicU64, Ordering};

/// Configuration of a [`Device`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceConfig {
    /// Number of physical qubits the device offers.
    pub num_qubits: usize,
    /// Gate/readout noise applied during execution.
    pub noise: NoiseModel,
    /// Whether the device supports mid-circuit measurement and reset (the
    /// Measure-and-Reset functionality qubit reuse relies on).
    pub supports_mid_circuit: bool,
    /// Base seed for shot sampling; every execution derives a fresh stream
    /// from it so results are reproducible run-to-run.
    pub seed: u64,
    /// Forces the interpreted per-gate simulator for noiseless execution
    /// instead of compiled kernel programs (noisy execution is always
    /// interpreted: per-gate noise anchors to gate boundaries, which fusion
    /// would erase). The `QRCC_SIM_INTERPRETED=1` environment variable
    /// forces this at [`Device::new`] time for differential testing.
    pub interpreted: bool,
}

impl DeviceConfig {
    /// An ideal (noiseless) device with `num_qubits` qubits and mid-circuit
    /// measurement support.
    pub fn ideal(num_qubits: usize) -> Self {
        DeviceConfig {
            num_qubits,
            noise: NoiseModel::noiseless(),
            supports_mid_circuit: true,
            seed: 0,
            interpreted: false,
        }
    }

    /// A noisy device using the given noise model.
    pub fn noisy(num_qubits: usize, noise: NoiseModel) -> Self {
        DeviceConfig { num_qubits, noise, supports_mid_circuit: true, seed: 0, interpreted: false }
    }

    /// Sets the sampling seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Disables mid-circuit measurement/reset support.
    pub fn without_mid_circuit(mut self) -> Self {
        self.supports_mid_circuit = false;
        self
    }

    /// Opts out of compiled kernel execution (differential-testing path).
    pub fn interpreted(mut self) -> Self {
        self.interpreted = true;
        self
    }
}

/// A simulated quantum device.
///
/// ```rust
/// use qrcc_circuit::Circuit;
/// use qrcc_sim::device::{Device, DeviceConfig};
///
/// let device = Device::new(DeviceConfig::ideal(3));
/// let mut ghz = Circuit::new(3);
/// ghz.h(0).cx(0, 1).cx(1, 2).measure_all();
/// let counts = device.execute(&ghz, 1000).unwrap();
/// assert_eq!(counts.shots(), 1000);
/// ```
#[derive(Debug)]
pub struct Device {
    config: DeviceConfig,
    executions: AtomicU64,
    /// Compiled kernel programs keyed by circuit body structural hash.
    kernels: KernelCache,
    /// Resolved at construction: config opt-out or `QRCC_SIM_INTERPRETED`.
    use_compiled: bool,
}

impl Device {
    /// Creates a device from its configuration.
    pub fn new(config: DeviceConfig) -> Self {
        let use_compiled = !config.interpreted && !interpreted_forced_by_env();
        Device { config, executions: AtomicU64::new(0), kernels: KernelCache::new(), use_compiled }
    }

    /// An ideal (noiseless) device with `num_qubits` qubits.
    pub fn ideal(num_qubits: usize) -> Self {
        Self::new(DeviceConfig::ideal(num_qubits))
    }

    /// The device configuration.
    pub fn config(&self) -> &DeviceConfig {
        &self.config
    }

    /// Number of `execute` calls made so far (useful for accounting how many
    /// subcircuit instances a cutting plan required).
    pub fn executions(&self) -> u64 {
        self.executions.load(Ordering::Relaxed)
    }

    /// Reserves `n` consecutive sampling-stream ids, returning the first.
    ///
    /// Batch executors grab a contiguous stream block up front and assign
    /// stream `base + i` to the `i`-th circuit, which makes a parallel batch
    /// reproduce the serial execution of the same circuits in order,
    /// independent of thread scheduling.
    pub fn reserve_streams(&self, n: u64) -> u64 {
        self.executions.fetch_add(n, Ordering::Relaxed)
    }

    fn rng_for_stream(&self, stream: u64) -> StdRng {
        StdRng::seed_from_u64(self.config.seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    fn next_rng(&self) -> StdRng {
        let n = self.executions.fetch_add(1, Ordering::Relaxed);
        self.rng_for_stream(n)
    }

    /// Checks that `circuit` could run on this device, without executing it
    /// or consuming a sampling stream. Batch executors use this to assign
    /// streams only to circuits that will actually run.
    ///
    /// # Errors
    ///
    /// Same width / mid-circuit conditions as [`Device::execute`].
    pub fn validate(&self, circuit: &Circuit) -> Result<(), SimError> {
        self.check_circuit(circuit)
    }

    fn check_circuit(&self, circuit: &Circuit) -> Result<(), SimError> {
        if circuit.num_qubits() > self.config.num_qubits {
            return Err(SimError::TooManyQubits {
                required: circuit.num_qubits(),
                available: self.config.num_qubits,
            });
        }
        if !self.config.supports_mid_circuit && needs_mid_circuit(circuit) {
            return Err(SimError::MidCircuitUnsupported);
        }
        Ok(())
    }

    /// Executes `circuit` for `shots` shots and returns the histogram over
    /// its classical bits. Circuits without any measurement are measured on
    /// every qubit at the end (classical bit `i` = qubit `i`).
    ///
    /// # Errors
    ///
    /// * [`SimError::TooManyQubits`] if the circuit is wider than the device.
    /// * [`SimError::MidCircuitUnsupported`] if the circuit needs mid-circuit
    ///   measurement or reset and the device does not support it.
    /// * [`SimError::ZeroShots`] if `shots == 0`.
    pub fn execute(&self, circuit: &Circuit, shots: u64) -> Result<Counts, SimError> {
        self.execute_with_rng(circuit, shots, || self.next_rng())
    }

    /// Executes `circuit` on an explicit sampling stream (see
    /// [`Device::reserve_streams`]) instead of the device's internal counter.
    ///
    /// Running stream `base + i` for the `i`-th circuit of a batch reproduces
    /// exactly what serial [`Device::execute`] calls in the same order would
    /// sample, which keeps parallel batch execution deterministic.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Device::execute`].
    pub fn execute_stream(
        &self,
        circuit: &Circuit,
        shots: u64,
        stream: u64,
    ) -> Result<Counts, SimError> {
        self.execute_with_rng(circuit, shots, || self.rng_for_stream(stream))
    }

    fn execute_with_rng(
        &self,
        circuit: &Circuit,
        shots: u64,
        make_rng: impl FnOnce() -> StdRng,
    ) -> Result<Counts, SimError> {
        if shots == 0 {
            return Err(SimError::ZeroShots);
        }
        self.check_circuit(circuit)?;

        let circuit = if circuit.operations().iter().any(Operation::is_measure) {
            circuit.clone()
        } else {
            let mut c = circuit.clone();
            c.measure_all();
            c
        };
        let mut rng = make_rng();

        let noiseless = self.config.noise.is_noiseless();
        if noiseless && !needs_mid_circuit(&circuit) && final_measurement_map(&circuit).is_some() {
            // Fast path: exact state vector of the unitary prefix, then
            // multinomial sampling of the measured qubits.
            let map = final_measurement_map(&circuit).expect("checked above");
            let unitary = circuit.without_non_unitary();
            let sv = if self.use_compiled {
                self.kernels.get_or_compile(&unitary).run_unitary()?
            } else {
                StateVector::from_circuit(&unitary)?
            };
            let all = sv.sample_counts(shots, &mut rng)?;
            let mut counts = Counts::new(circuit.num_clbits());
            for (outcome, count) in all.iter() {
                let mut key = 0u64;
                for &(qubit, clbit) in &map {
                    if outcome & (1 << qubit) != 0 {
                        key |= 1 << clbit;
                    }
                }
                counts.record(key, count);
            }
            return Ok(counts);
        }

        if noiseless && self.use_compiled {
            // Compiled trajectory path: fuse once, then walk the (much
            // shorter) kernel program per shot. Noiseless gate/readout noise
            // draws no randomness, so the rng stream matches the interpreted
            // trajectory exactly.
            let program = self.kernels.get_or_compile(&circuit);
            let mut counts = Counts::new(circuit.num_clbits());
            for _ in 0..shots {
                let bits = self.run_single_trajectory_compiled(&program, &mut rng)?;
                counts.record_bits(&bits);
            }
            return Ok(counts);
        }

        // Interpreted trajectory path: one per-gate state-vector run per shot.
        // Noisy execution always lands here — stochastic per-gate noise
        // anchors to gate boundaries, which kernel fusion would erase.
        let mut counts = Counts::new(circuit.num_clbits());
        for _ in 0..shots {
            let bits = self.run_single_trajectory(&circuit, &mut rng)?;
            counts.record_bits(&bits);
        }
        Ok(counts)
    }

    fn run_single_trajectory_compiled(
        &self,
        program: &FramedProgram,
        rng: &mut StdRng,
    ) -> Result<Vec<bool>, SimError> {
        let mut state = StateVector::try_new(program.num_qubits())?;
        let mut clbits = vec![false; program.num_clbits()];
        for kernel in program.kernels() {
            match kernel {
                Kernel::Measure { qubit, clbit, .. } => {
                    let outcome = state.measure(QubitId::new(*qubit), rng);
                    clbits[*clbit] = self.config.noise.apply_readout(outcome, rng);
                }
                Kernel::Reset { qubit, .. } => state.reset(QubitId::new(*qubit), rng),
                _ => kernel.apply(state.amps_mut()),
            }
        }
        Ok(clbits)
    }

    /// Cumulative kernel-compilation telemetry for this device (`None`
    /// when the device runs the interpreted path).
    pub fn compile_stats(&self) -> Option<CompileStats> {
        self.use_compiled.then(|| self.kernels.stats())
    }

    /// The device's compiled-program cache.
    pub fn kernel_cache(&self) -> &KernelCache {
        &self.kernels
    }

    fn run_single_trajectory(
        &self,
        circuit: &Circuit,
        rng: &mut StdRng,
    ) -> Result<Vec<bool>, SimError> {
        let mut state = StateVector::new(circuit.num_qubits());
        let mut clbits = vec![false; circuit.num_clbits()];
        for op in circuit.operations() {
            match op {
                Operation::Single { gate, qubit } => {
                    state.apply_gate(gate, &[*qubit]);
                    self.config.noise.apply_gate_noise(&mut state, &[*qubit], rng);
                }
                Operation::Two { gate, qubits } => {
                    state.apply_gate(gate, qubits);
                    self.config.noise.apply_gate_noise(&mut state, qubits, rng);
                }
                Operation::Measure { qubit, clbit } => {
                    let outcome = state.measure(*qubit, rng);
                    clbits[*clbit] = self.config.noise.apply_readout(outcome, rng);
                }
                Operation::Reset { qubit } => {
                    state.reset(*qubit, rng);
                }
                Operation::Barrier { .. } => {}
            }
        }
        Ok(clbits)
    }

    /// Estimates the expectation value of `observable` on the state prepared
    /// by the (unitary) `circuit`, using `shots` shots per Pauli term.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ObservableWidthMismatch`] when the observable and
    /// circuit widths differ, plus any error from [`Device::execute`].
    pub fn estimate_expectation(
        &self,
        circuit: &Circuit,
        observable: &PauliObservable,
        shots: u64,
    ) -> Result<f64, SimError> {
        if observable.num_qubits() != circuit.num_qubits() {
            return Err(SimError::ObservableWidthMismatch {
                observable: observable.num_qubits(),
                circuit: circuit.num_qubits(),
            });
        }
        let mut total = 0.0;
        for (coeff, string) in observable.terms() {
            if string.is_identity() {
                total += coeff;
                continue;
            }
            let mc = measurement_circuit(circuit, string);
            let counts = self.execute(&mc, shots)?;
            total += coeff * expectation_from_counts(&counts, string.support().len());
        }
        Ok(total)
    }
}

/// Whether the circuit requires mid-circuit measurement or reset support:
/// it contains a reset, or a measurement that is followed by another
/// operation on the same qubit.
pub fn needs_mid_circuit(circuit: &Circuit) -> bool {
    let ops = circuit.operations();
    for (i, op) in ops.iter().enumerate() {
        match op {
            Operation::Reset { .. } => return true,
            Operation::Measure { qubit, .. } => {
                let later_use = ops[i + 1..]
                    .iter()
                    .any(|later| !later.is_barrier() && later.qubits().contains(qubit));
                if later_use {
                    return true;
                }
            }
            _ => {}
        }
    }
    false
}

/// The `(qubit, clbit)` pairs of a circuit whose measurements are all
/// terminal (no operation follows them on the measured wire); `None` if any
/// measurement is mid-circuit.
fn final_measurement_map(circuit: &Circuit) -> Option<Vec<(usize, usize)>> {
    if needs_mid_circuit(circuit) {
        return None;
    }
    let mut map = Vec::new();
    for op in circuit.operations() {
        if let Operation::Measure { qubit, clbit } = op {
            map.push((qubit.index(), *clbit));
        }
    }
    Some(map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrcc_circuit::observable::PauliString;

    #[test]
    fn execute_counts_total_shots() {
        let device = Device::ideal(2);
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).measure_all();
        let counts = device.execute(&c, 500).unwrap();
        assert_eq!(counts.shots(), 500);
        // only 00 and 11 should appear for a Bell state on an ideal device
        assert_eq!(counts.count(0b01), 0);
        assert_eq!(counts.count(0b10), 0);
    }

    #[test]
    fn implicit_measure_all_when_no_measurements() {
        let device = Device::ideal(2);
        let mut c = Circuit::new(2);
        c.x(1);
        let counts = device.execute(&c, 100).unwrap();
        assert_eq!(counts.count(0b10), 100);
    }

    #[test]
    fn width_limit_is_enforced() {
        let device = Device::ideal(2);
        let c = Circuit::new(3);
        assert!(matches!(device.execute(&c, 10), Err(SimError::TooManyQubits { .. })));
    }

    #[test]
    fn mid_circuit_support_flag_is_respected() {
        let config = DeviceConfig::ideal(2).without_mid_circuit();
        let device = Device::new(config);
        let mut c = Circuit::new(2);
        c.h(0).measure(0, 0).reset(0).h(0).measure(0, 1);
        assert!(matches!(device.execute(&c, 10), Err(SimError::MidCircuitUnsupported)));
        let permissive = Device::ideal(2);
        assert!(permissive.execute(&c, 10).is_ok());
    }

    #[test]
    fn needs_mid_circuit_detection() {
        let mut terminal = Circuit::new(2);
        terminal.h(0).cx(0, 1).measure_all();
        assert!(!needs_mid_circuit(&terminal));
        let mut reuse = Circuit::new(1);
        reuse.h(0).measure(0, 0).h(0);
        assert!(needs_mid_circuit(&reuse));
        let mut with_reset = Circuit::new(1);
        with_reset.reset(0);
        assert!(needs_mid_circuit(&with_reset));
    }

    #[test]
    fn noisy_execution_degrades_ghz_fidelity() {
        let mut ghz = Circuit::new(4);
        ghz.h(0).cx(0, 1).cx(1, 2).cx(2, 3).measure_all();
        let ideal = Device::ideal(4);
        let noisy = Device::new(DeviceConfig::noisy(4, NoiseModel::uniform(0.05)).with_seed(3));
        let ideal_counts = ideal.execute(&ghz, 2000).unwrap();
        let noisy_counts = noisy.execute(&ghz, 2000).unwrap();
        let good = |c: &Counts| (c.count(0b0000) + c.count(0b1111)) as f64 / c.shots() as f64;
        assert!(good(&ideal_counts) > 0.999);
        assert!(good(&noisy_counts) < 0.95);
    }

    #[test]
    fn expectation_estimation_matches_statevector() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).ry(0.6, 2).cz(1, 2);
        let mut obs = PauliObservable::new(3);
        obs.add_term(0.7, PauliString::zz(3, 0, 1));
        obs.add_term(-0.4, PauliString::z(3, 2));
        obs.add_term(0.25, PauliString::identity(3));
        let exact = StateVector::from_circuit(&c).unwrap().expectation(&obs);
        let device = Device::new(DeviceConfig::ideal(3).with_seed(9));
        let estimate = device.estimate_expectation(&c, &obs, 40_000).unwrap();
        assert!((estimate - exact).abs() < 0.02, "estimate {estimate} vs exact {exact}");
    }

    #[test]
    fn expectation_estimation_rejects_width_mismatch() {
        let device = Device::ideal(3);
        let c = Circuit::new(2);
        let obs = PauliObservable::all_z(3);
        assert!(matches!(
            device.estimate_expectation(&c, &obs, 10),
            Err(SimError::ObservableWidthMismatch { .. })
        ));
    }

    #[test]
    fn execution_counter_increments() {
        let device = Device::ideal(1);
        let mut c = Circuit::new(1);
        c.h(0).measure(0, 0);
        assert_eq!(device.executions(), 0);
        device.execute(&c, 10).unwrap();
        device.execute(&c, 10).unwrap();
        assert_eq!(device.executions(), 2);
    }

    #[test]
    fn explicit_streams_reproduce_serial_execution() {
        let mut c = Circuit::new(2);
        c.h(0).ry(0.7, 1).cx(0, 1).measure_all();
        // serial: three executes consume streams 0, 1, 2
        let serial = Device::new(DeviceConfig::noisy(2, NoiseModel::uniform(0.02)).with_seed(9));
        let serial_counts: Vec<Counts> = (0..3).map(|_| serial.execute(&c, 500).unwrap()).collect();
        // batched: reserve the same stream block up front, run in any order
        let batched = Device::new(DeviceConfig::noisy(2, NoiseModel::uniform(0.02)).with_seed(9));
        let base = batched.reserve_streams(3);
        assert_eq!(base, 0);
        for i in [2usize, 0, 1] {
            let counts = batched.execute_stream(&c, 500, base + i as u64).unwrap();
            assert_eq!(counts, serial_counts[i], "stream {i} must match serial run {i}");
        }
        assert_eq!(batched.executions(), 3);
    }
}
