//! Property-based tests for the state-vector simulator: unitarity (norm
//! preservation), inverse circuits, probability normalisation, expectation
//! bounds and measurement-branch consistency on randomly generated circuits.

use proptest::prelude::*;
use qrcc_circuit::observable::PauliString;
use qrcc_circuit::{Circuit, QubitId};
use qrcc_sim::branching::enumerate_branches;
use qrcc_sim::StateVector;

/// Strategy producing a random unitary circuit over `n` qubits.
fn random_circuit(n: usize, max_gates: usize) -> impl Strategy<Value = Circuit> {
    let gate = (0..8usize, 0..n, 0..n, -3.0f64..3.0);
    proptest::collection::vec(gate, 1..max_gates).prop_map(move |gates| {
        let mut c = Circuit::new(n);
        for (kind, a, b, theta) in gates {
            let a = a % n;
            let b = b % n;
            match kind {
                0 => {
                    c.h(a);
                }
                1 => {
                    c.rx(theta, a);
                }
                2 => {
                    c.rz(theta, a);
                }
                3 => {
                    c.t(a);
                }
                4 if a != b => {
                    c.cx(a, b);
                }
                5 if a != b => {
                    c.cz(a, b);
                }
                6 if a != b => {
                    c.rzz(theta, a, b);
                }
                7 if a != b => {
                    c.cp(theta, a, b);
                }
                _ => {
                    c.sx(a);
                }
            }
        }
        c
    })
}

/// Strategy producing a random Pauli string over `n` qubits.
fn random_pauli(n: usize) -> impl Strategy<Value = PauliString> {
    proptest::collection::vec(0..4u8, n).prop_map(|ps| {
        use qrcc_circuit::observable::Pauli;
        PauliString::from_paulis(
            ps.into_iter()
                .map(|p| match p {
                    0 => Pauli::I,
                    1 => Pauli::X,
                    2 => Pauli::Y,
                    _ => Pauli::Z,
                })
                .collect(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn norm_is_preserved(c in random_circuit(4, 25)) {
        let sv = StateVector::from_circuit(&c).unwrap();
        prop_assert!((sv.norm() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn probabilities_sum_to_one(c in random_circuit(3, 20)) {
        let sv = StateVector::from_circuit(&c).unwrap();
        let total: f64 = sv.probabilities().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn applying_the_inverse_returns_to_zero(c in random_circuit(3, 15)) {
        let mut sv = StateVector::from_circuit(&c).unwrap();
        sv.apply_circuit(&c.inverse().unwrap()).unwrap();
        prop_assert!((sv.probabilities()[0] - 1.0).abs() < 1e-8);
    }

    #[test]
    fn pauli_expectations_are_bounded(c in random_circuit(4, 20), p in random_pauli(4)) {
        let sv = StateVector::from_circuit(&c).unwrap();
        let e = sv.expectation_pauli(&p);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&e), "expectation {e} out of range");
    }

    #[test]
    fn measurement_branch_probabilities_sum_to_one(c in random_circuit(3, 12)) {
        let mut measured = c.clone();
        measured.measure(0, 0).h(0).measure(1, 1);
        let branches = enumerate_branches(&measured).unwrap();
        let total: f64 = branches.iter().map(|b| b.probability).sum();
        prop_assert!((total - 1.0).abs() < 1e-8);
        for b in branches {
            prop_assert!((b.state.norm() - 1.0).abs() < 1e-8);
        }
    }

    #[test]
    fn marginal_probabilities_match_projection(c in random_circuit(3, 18)) {
        let sv = StateVector::from_circuit(&c).unwrap();
        for q in 0..3 {
            let p0 = sv.outcome_probability(QubitId::new(q), false);
            let p1 = sv.outcome_probability(QubitId::new(q), true);
            prop_assert!((p0 + p1 - 1.0).abs() < 1e-9);
        }
    }
}
