//! Differential tests for the compiled kernel path: the compiled simulator
//! must agree with the gate-by-gate interpreter (the reference) to 1e-12 on
//! every IR gate, on random circuits, on every benchmark generator family,
//! and — bit-for-bit — on seeded shot trajectories with mid-circuit
//! measurement and reset. A deduplicated variant batch served from the
//! [`KernelCache`] must reproduce the uncached run exactly.

use proptest::prelude::*;
use qrcc_circuit::generators::{
    aqft, hamiltonian_simulation, qaoa_regular, qft, qft_no_swap, ripple_carry_adder, supremacy,
    vqe_two_local, HamiltonianKind,
};
use qrcc_circuit::Circuit;
use qrcc_sim::branching::classical_distribution;
use qrcc_sim::compile::{FramedProgram, KernelCache};
use qrcc_sim::device::{Device, DeviceConfig};
use qrcc_sim::StateVector;

/// Asserts the compiled unitary run matches the interpreted state vector
/// amplitude-for-amplitude at 1e-12.
fn assert_compiled_matches_interpreted(circuit: &Circuit) {
    let interpreted = StateVector::from_circuit(circuit).unwrap();
    let program = FramedProgram::compile(circuit);
    let compiled = program.run_unitary().unwrap();
    for (i, (a, b)) in interpreted.amplitudes().iter().zip(compiled.amplitudes()).enumerate() {
        assert!(
            (*a - *b).abs() < 1e-12,
            "amplitude {i} diverges in {}: interpreted {a:?} vs compiled {b:?}",
            circuit.name()
        );
    }
}

/// Asserts compiled and interpreted classical distributions agree at 1e-12
/// for a circuit with measurements (exercising branch enumeration).
fn assert_distributions_match(circuit: &Circuit) {
    let interpreted = classical_distribution(circuit).unwrap();
    let cache = KernelCache::new();
    let compiled = cache.get_or_compile(circuit).classical_distribution().unwrap();
    assert_eq!(interpreted.len(), compiled.len());
    for (i, (a, b)) in interpreted.iter().zip(&compiled).enumerate() {
        assert!((a - b).abs() < 1e-12, "P[{i}] diverges: {a} vs {b}");
    }
}

/// A circuit applying every single-qubit gate of the IR at least once.
fn every_1q_gate(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    for q in 0..n {
        let t = 0.3 + 0.1 * q as f64;
        c.id(q)
            .h(q)
            .x(q)
            .y(q)
            .z(q)
            .s(q)
            .sdg(q)
            .t(q)
            .tdg(q)
            .sx(q)
            .rx(t, q)
            .ry(1.3 * t, q)
            .rz(0.7 * t, q)
            .p(0.9 * t, q)
            .u3(t, 0.2, 1.1, q);
    }
    c
}

/// A circuit applying every two-qubit gate of the IR at least once.
fn every_2q_gate(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.h(q);
    }
    for a in 0..n {
        let b = (a + 1) % n;
        let t = 0.4 + 0.15 * a as f64;
        c.cx(a, b)
            .cy(a, b)
            .cz(a, b)
            .swap(a, b)
            .rzz(t, a, b)
            .rxx(1.2 * t, a, b)
            .ryy(0.8 * t, a, b)
            .cp(0.6 * t, a, b);
    }
    c
}

#[test]
fn every_ir_gate_matches_interpreted() {
    assert_compiled_matches_interpreted(&every_1q_gate(3));
    assert_compiled_matches_interpreted(&every_2q_gate(4));
    let mut both = every_1q_gate(4);
    both.compose(&every_2q_gate(4));
    both.ccx(0, 1, 2).barrier().ccx(2, 3, 0);
    assert_compiled_matches_interpreted(&both);
}

#[test]
fn benchmark_families_match_interpreted() {
    let families: Vec<Circuit> = vec![
        qft(6),
        qft_no_swap(6),
        aqft(6, 3),
        supremacy(2, 3, 4, 7),
        ripple_carry_adder(2, 11),
        qaoa_regular(6, 3, 2, 5).0,
        hamiltonian_simulation(HamiltonianKind::TransverseFieldIsing, 2, 3, false, 2, 0.1).0,
        hamiltonian_simulation(HamiltonianKind::Xy, 2, 2, false, 2, 0.2).0,
        hamiltonian_simulation(HamiltonianKind::Heisenberg, 2, 2, false, 1, 0.15).0,
        vqe_two_local(6, 2, 13),
    ];
    for circuit in &families {
        assert_compiled_matches_interpreted(circuit);
        let mut measured = circuit.clone();
        measured.measure_all();
        assert_distributions_match(&measured);
    }
}

#[test]
fn mid_circuit_measure_and_reset_distributions_match() {
    let mut c = Circuit::new(3);
    c.h(0).cx(0, 1).measure(0, 0).reset(0).h(0).cx(1, 2).measure(1, 1).x(0).measure_all();
    assert_distributions_match(&c);

    // reset after superposition: the reset branch probabilities must agree
    let mut r = Circuit::new(2);
    r.h(0).h(1).cz(0, 1).reset(1).h(1).measure_all();
    assert_distributions_match(&r);
}

#[test]
fn seeded_shot_trajectories_are_identical_across_modes() {
    // Noiseless trajectories draw rng only at measure/reset, and the
    // compiled path anchors those to the same points — so with equal seeds
    // the two modes must produce byte-identical counts.
    let mut c = Circuit::new(4);
    c.h(0).cx(0, 1).measure(0, 0).reset(0).ry(0.7, 0).cx(1, 2).cx(2, 3).t(3).measure_all();
    for seed in [1u64, 7, 42] {
        let compiled = Device::new(DeviceConfig::ideal(4).with_seed(seed));
        let interpreted = Device::new(DeviceConfig::ideal(4).with_seed(seed).interpreted());
        let a = compiled.execute(&c, 500).unwrap();
        let b = interpreted.execute(&c, 500).unwrap();
        assert_eq!(a, b, "seed {seed}: compiled and interpreted counts must be identical");
    }
}

#[test]
fn cache_hits_are_deterministic_over_a_deduplicated_variant_batch() {
    // A QRCC-style variant batch: one shared body, differing init prologues
    // and measurement epilogues. Serving variants from the cache (bodies
    // compiled once, shared via Arc) must reproduce the uncached per-variant
    // compile exactly.
    let mut body = Circuit::new(3);
    body.h(0).cx(0, 1).t(1).cx(1, 2).rz(0.4, 2).cx(0, 2).s(0);

    let mut variants = Vec::new();
    for init in 0..4usize {
        for basis in 0..2usize {
            let mut v = Circuit::new(3);
            // init prologue: prepare qubit 0 in one of the cut states
            match init {
                0 => {}
                1 => {
                    v.x(0);
                }
                2 => {
                    v.h(0);
                }
                _ => {
                    v.h(0).s(0);
                }
            }
            v.compose(&body);
            // measurement epilogue: basis rotation + terminal measures
            if basis == 1 {
                v.h(2);
            }
            v.measure_all();
            variants.push(v);
        }
    }

    let cache = KernelCache::new();
    let mut first_pass = Vec::new();
    for v in &variants {
        let fresh = FramedProgram::compile(v).classical_distribution().unwrap();
        let cached = cache.get_or_compile(v).classical_distribution().unwrap();
        assert_eq!(fresh, cached, "cached body must reproduce the frameless compile exactly");
        first_pass.push(cached);
    }
    assert_eq!(cache.compiled_bodies(), 1, "all variants share one compiled body");
    assert!(cache.hits() >= variants.len() as u64 - 1);

    // a second pass is served fully from cache and is bit-identical
    for (v, expected) in variants.iter().zip(&first_pass) {
        let again = cache.get_or_compile(v).classical_distribution().unwrap();
        assert_eq!(&again, expected, "cache hits must be deterministic");
    }
}

/// Strategy producing a random unitary circuit drawing from every gate
/// family the compiler specializes: fusable 1q runs, diagonal gates,
/// permutations, controlled flips and dense two-qubit kernels.
fn random_compilable_circuit(n: usize, max_gates: usize) -> impl Strategy<Value = Circuit> {
    let gate = (0..14usize, 0..n, 0..n, -3.0f64..3.0);
    proptest::collection::vec(gate, 1..max_gates).prop_map(move |gates| {
        let mut c = Circuit::new(n);
        for (kind, a, b, theta) in gates {
            match kind {
                0 => {
                    c.h(a);
                }
                1 => {
                    c.rx(theta, a);
                }
                2 => {
                    c.rz(theta, a);
                }
                3 => {
                    c.t(a);
                }
                4 => {
                    c.x(a);
                }
                5 => {
                    c.s(a);
                }
                6 => {
                    c.u3(theta, 0.3, 0.9, a);
                }
                7 if a != b => {
                    c.cx(a, b);
                }
                8 if a != b => {
                    c.cz(a, b);
                }
                9 if a != b => {
                    c.swap(a, b);
                }
                10 if a != b => {
                    c.rzz(theta, a, b);
                }
                11 if a != b => {
                    c.rxx(theta, a, b);
                }
                12 if a != b => {
                    c.cy(a, b);
                }
                _ => {
                    c.sdg(a);
                }
            }
        }
        c
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn compiled_equals_interpreted_on_random_circuits(c in random_compilable_circuit(4, 40)) {
        assert_compiled_matches_interpreted(&c);
    }

    #[test]
    fn compiled_distributions_match_with_mid_circuit_measures(
        c in random_compilable_circuit(3, 20),
        cut in 0..3usize,
    ) {
        let mut measured = Circuit::new(3);
        measured.compose(&c);
        measured.measure(cut, 0).reset(cut).h(cut);
        measured.measure_all();
        assert_distributions_match(&measured);
    }

    #[test]
    fn compiled_trajectories_match_interpreted_per_seed(
        c in random_compilable_circuit(3, 15),
        seed in 0..1000u64,
    ) {
        let mut measured = Circuit::new(3);
        measured.compose(&c);
        measured.measure(0, 0).reset(0).h(0).measure_all();
        let compiled = Device::new(DeviceConfig::ideal(3).with_seed(seed));
        let interpreted = Device::new(DeviceConfig::ideal(3).with_seed(seed).interpreted());
        prop_assert_eq!(
            compiled.execute(&measured, 50).unwrap(),
            interpreted.execute(&measured, 50).unwrap()
        );
    }
}
