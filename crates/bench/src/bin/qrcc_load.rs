//! qrcc-load: the sustained-load proof harness. Drives N concurrent
//! `RemoteBackend` clients with a mixed wire-cut / gate-cut workload
//! against a multi-worker loopback fleet for a fixed duration while a
//! `FleetMonitor` polls every worker's live scrape endpoint (`GetMetrics` /
//! `GetHealth`, protocol v3) and scores the configured SLOs in real time.
//! Writes `BENCH_load.json` in the working directory.
//!
//! Usage: `cargo run --release -p qrcc-bench --bin qrcc-load [--smoke]
//!         [--workers N] [--clients N] [--seconds S]`
//!
//! `--smoke` shrinks the fleet and duration and skips the JSON dump — the
//! CI gate. Both modes hard-assert:
//!
//! * every client iteration succeeded (zero dispatch-level failures);
//! * **zero fleet SLO breaches** across every live poll;
//! * every worker stayed reachable for the whole run;
//! * `GetHealth` flips to `draining` once the servers begin drain.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use qrcc_circuit::generators;
use qrcc_circuit::observable::PauliObservable;
use qrcc_circuit::Circuit;
use qrcc_core::execute::ShotsBackend;
use qrcc_core::obs::{bench_json, MetricsSnapshot, MonitorPolicy, SloSpec, SloStatus};
use qrcc_core::pipeline::QrccPipeline;
use qrcc_core::schedule::{DeviceRegistry, Scheduler};
use qrcc_core::{QrccConfig, SchedulePolicy};
use qrcc_net::monitor::{FleetMonitor, WINDOW_LATENCY_METRIC};
use qrcc_net::{HealthState, QrccServer, RemoteBackend};
use qrcc_sim::device::{Device, DeviceConfig};

/// The fleet-wide SLO the live monitor scores every poll: p99 batch latency
/// under 250 ms, at most 1% failed batches, 99% availability. Loopback
/// exact-simulation batches sit orders of magnitude under the latency cap —
/// a breach means the harness itself regressed.
fn load_slo() -> SloSpec {
    SloSpec::new("fleet-load")
        .with_latency(0.99, 250_000)
        .with_max_error_rate(0.01)
        .with_min_availability(0.99)
}

/// Wire-cut workload: the 6-qubit entangled chain cut for 3-qubit devices.
fn wire_workload() -> (Circuit, QrccConfig) {
    let mut circuit = Circuit::new(6);
    circuit.h(0);
    for q in 0..5 {
        circuit.cx(q, q + 1);
        circuit.ry(0.17 * (q as f64 + 1.0), q + 1);
    }
    let config = QrccConfig::new(3).with_subcircuit_range(2, 3).with_ilp_time_limit(Duration::ZERO);
    (circuit, config)
}

/// Gate-cut workload: QAOA MaxCut on a 2-regular graph, gate cuts enabled.
fn gate_workload() -> (Circuit, PauliObservable, QrccConfig) {
    let (circuit, graph) = generators::qaoa_regular(6, 2, 1, 13);
    let observable = PauliObservable::maxcut(&graph);
    let config = QrccConfig::new(4)
        .with_subcircuit_range(2, 3)
        .with_gate_cuts(true)
        .with_ilp_time_limit(Duration::ZERO);
    (circuit, observable, config)
}

struct ClientCounters {
    wire_ok: AtomicU64,
    gate_ok: AtomicU64,
    failed: AtomicU64,
}

/// One client: its own pooled connections to every worker, its own
/// scheduler, alternating wire-cut and gate-cut pipelines until `stop`.
fn run_client(
    id: usize,
    addrs: &[std::net::SocketAddr],
    stop: &AtomicBool,
    counters: &ClientCounters,
) {
    let mut registry = DeviceRegistry::new();
    for (i, addr) in addrs.iter().enumerate() {
        let backend = RemoteBackend::connect(addr).expect("client connects to worker");
        registry.register(format!("worker-{i}"), backend);
    }
    let policy = SchedulePolicy::with_budget(50_000)
        .with_min_shots(64)
        .with_chunk_size(4)
        .with_max_in_flight_chunks(2)
        .with_max_retries(3);
    let scheduler = Scheduler::new(&registry, policy);

    let (wire_circuit, wire_config) = wire_workload();
    let wire = QrccPipeline::plan(&wire_circuit, wire_config).expect("wire workload plans");
    let (gate_circuit, observable, gate_config) = gate_workload();
    let gate = QrccPipeline::plan(&gate_circuit, gate_config).expect("gate workload plans");

    let mut iteration = id; // stagger which workload each client starts on
    while !stop.load(Ordering::Relaxed) {
        let result = if iteration.is_multiple_of(2) {
            wire.execute_streaming(&scheduler).map(|_| ())
        } else {
            gate.execute_observables_streaming(&scheduler, &observable).map(|_| ())
        };
        match result {
            Ok(()) if iteration.is_multiple_of(2) => {
                counters.wire_ok.fetch_add(1, Ordering::Relaxed)
            }
            Ok(()) => counters.gate_ok.fetch_add(1, Ordering::Relaxed),
            Err(e) => {
                eprintln!("client {id}: iteration failed: {e}");
                counters.failed.fetch_add(1, Ordering::Relaxed)
            }
        };
        iteration += 1;
    }
}

fn arg_value(args: &[String], name: &str, default: u64) -> u64 {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let workers = arg_value(&args, "--workers", 2) as usize;
    let clients = arg_value(&args, "--clients", if smoke { 4 } else { 6 }) as usize;
    let seconds = arg_value(&args, "--seconds", if smoke { 3 } else { 8 });
    let duration = Duration::from_secs(seconds);

    // The fleet: `workers` servers on ephemeral loopback ports, each a
    // 4-qubit sampling device behind the windowed metrics machinery.
    let servers: Vec<_> = (0..workers)
        .map(|i| {
            QrccServer::bind(
                "127.0.0.1:0",
                ShotsBackend::new(Device::new(DeviceConfig::ideal(4).with_seed(7 + i as u64)), 1),
            )
            .expect("server binds")
            .with_metrics_window(Duration::from_secs(10), 10)
            .spawn()
        })
        .collect();
    let addrs: Vec<_> = servers.iter().map(|s| s.addr()).collect();
    println!("fleet: {workers} workers at {addrs:?}, {clients} clients, {seconds}s");

    // The monitor rides its own connections so polling never queues behind
    // the load clients' batches.
    let monitor_backends: Vec<_> =
        addrs.iter().map(|addr| RemoteBackend::connect(addr).expect("monitor connects")).collect();
    let policy = MonitorPolicy {
        window_us: 10_000_000,
        buckets: 10,
        poll_interval_us: 500_000,
        target_protocol: qrcc_net::PROTOCOL_VERSION,
        slo: Some(load_slo()),
    };
    let mut monitor = FleetMonitor::new(policy);
    for backend in &monitor_backends {
        monitor.add_worker(backend);
    }

    let stop = AtomicBool::new(false);
    let counters = ClientCounters {
        wire_ok: AtomicU64::new(0),
        gate_ok: AtomicU64::new(0),
        failed: AtomicU64::new(0),
    };

    let started = Instant::now();
    let (polls, breached_polls, worst, unreachable_polls, final_view) =
        std::thread::scope(|scope| {
            for id in 0..clients {
                let addrs = &addrs;
                let stop = &stop;
                let counters = &counters;
                scope.spawn(move || run_client(id, addrs, stop, counters));
            }

            // Live SLO tracking on the poll cadence for the whole duration.
            let mut polls = 0u64;
            let mut breached = 0u64;
            let mut unreachable = 0u64;
            let mut worst = SloStatus::Ok;
            let final_view = monitor.watch(duration, |view| {
                polls += 1;
                let status = view.status();
                worst = worst.max(status);
                if status == SloStatus::Breached {
                    breached += 1;
                }
                if view.unreachable > 0 {
                    unreachable += 1;
                }
                let latency = view
                    .merged
                    .histograms
                    .iter()
                    .find(|(name, _)| name == WINDOW_LATENCY_METRIC)
                    .map(|(_, h)| h.clone())
                    .unwrap_or_default();
                println!(
                    "t={:>5.1}s  status={status}  window: {} batches, p50 {} us, p99 {} us, \
                     queue depth {}",
                    started.elapsed().as_secs_f64(),
                    latency.count(),
                    latency.p50().unwrap_or(0),
                    latency.p99().unwrap_or(0),
                    view.total_queue_depth(),
                );
            });
            stop.store(true, Ordering::Relaxed);
            (polls, breached, worst, unreachable, final_view)
        });
    let elapsed = started.elapsed();

    let wire_ok = counters.wire_ok.load(Ordering::Relaxed);
    let gate_ok = counters.gate_ok.load(Ordering::Relaxed);
    let failed = counters.failed.load(Ordering::Relaxed);

    // The fleet-merged windowed latency from the final live poll.
    let latency = final_view
        .merged
        .histograms
        .iter()
        .find(|(name, _)| name == WINDOW_LATENCY_METRIC)
        .map(|(_, h)| h.clone())
        .unwrap_or_default();
    let batches: u64 = servers.iter().map(|s| s.stats().batches).sum();
    let circuits_ok: u64 = servers.iter().map(|s| s.stats().circuits_ok).sum();
    let circuits_failed: u64 = servers.iter().map(|s| s.stats().circuits_failed).sum();
    let throughput = batches as f64 / elapsed.as_secs_f64();
    let error_rate = circuits_failed as f64 / (circuits_ok + circuits_failed).max(1) as f64;

    println!(
        "\nload: {} wire + {} gate iterations ({} failed) across {clients} clients in {:.1?}",
        wire_ok, gate_ok, failed, elapsed
    );
    println!(
        "fleet: {batches} batches ({throughput:.0} batches/s), error rate {error_rate:.4}, \
         window p50 {} us / p99 {} us / p999 {} us",
        latency.p50().unwrap_or(0),
        latency.p99().unwrap_or(0),
        latency.p999().unwrap_or(0),
    );
    println!("monitor: {polls} polls, worst status {worst}, {breached_polls} breached");
    if let Some(eval) = &final_view.slo {
        println!("{eval}");
    }

    // The proof: sustained mixed load, zero failures, zero SLO breaches,
    // every worker reachable on every poll.
    assert!(wire_ok > 0 && gate_ok > 0, "both workload kinds must complete iterations");
    assert_eq!(failed, 0, "no client iteration may fail under clean sustained load");
    assert_eq!(breached_polls, 0, "the fleet SLO must hold on every live poll");
    assert_eq!(unreachable_polls, 0, "every worker must answer every poll");
    assert!(polls >= 2, "the monitor must have polled on its cadence");

    // Drain: GetHealth must flip to draining before the sockets go away.
    for server in &servers {
        server.begin_drain();
    }
    for backend in &monitor_backends {
        let health = backend.get_health().expect("draining servers still answer GetHealth");
        assert_eq!(health.state, HealthState::Draining, "drain must be visible on the wire");
    }
    println!("drain: all {workers} workers report draining via GetHealth");

    if smoke {
        println!("\nsmoke OK: sustained load held every SLO");
    } else {
        let mut metrics = MetricsSnapshot::default()
            .with_counter("client_runs_wire_ok", wire_ok)
            .with_counter("client_runs_gate_ok", gate_ok)
            .with_counter("client_runs_failed", failed)
            .with_counter("server_batches", batches)
            .with_counter("server_circuits_ok", circuits_ok)
            .with_counter("server_circuits_failed", circuits_failed)
            .with_counter("monitor_polls", polls)
            .with_counter("monitor_breached_polls", breached_polls)
            .with_gauge("throughput_batches_per_s", throughput)
            .with_gauge("error_rate", error_rate)
            .with_gauge("window_p50_us", latency.p50().unwrap_or(0) as f64)
            .with_gauge("window_p99_us", latency.p99().unwrap_or(0) as f64)
            .with_gauge("window_p999_us", latency.p999().unwrap_or(0) as f64)
            .with_histogram("fleet_window_batch_latency_us", latency.clone());
        for (i, server) in servers.iter().enumerate() {
            let stats = server.stats();
            metrics = metrics
                .with_gauge(&format!("worker{i}_queue_depth"), stats.queue_depth as f64)
                .with_gauge(&format!("worker{i}_queue_high_water"), stats.queue_high_water as f64);
        }
        let json = bench_json(
            "qrcc_load",
            &[
                ("workers", workers.to_string()),
                ("clients", clients.to_string()),
                ("seconds", seconds.to_string()),
                // config values are pre-rendered JSON: strings self-quote
                ("slo", "\"p99<=250ms, err<=1%, avail>=99%\"".to_string()),
                ("smoke", smoke.to_string()),
            ],
            &metrics,
        );
        std::fs::write("BENCH_load.json", &json).expect("write BENCH_load.json");
        println!("\nwrote BENCH_load.json");
    }

    for server in servers {
        server.shutdown();
    }
}
