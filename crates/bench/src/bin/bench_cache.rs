//! Result-cache benchmark: a QAOA-style parameter sweep executed cold
//! (empty cache), warm (every circuit already cached — zero device shots),
//! and as a shot top-up (the same sweep at a doubled per-circuit shot count,
//! served as delta hits that execute only the missing half). Writes
//! `BENCH_cache.json` in the working directory.
//!
//! Usage: `cargo run --release -p qrcc-bench --bin bench_cache [--smoke]`
//!
//! `--smoke` runs a scaled-down sweep and exits non-zero unless the warm
//! pass spends at least 50% fewer device shots than the cold pass at
//! byte-identical reconstruction — the CI guard against cache regressions.
//! The full run records the numbers quoted in the README.

use qrcc_circuit::Circuit;
use qrcc_core::obs::{bench_json, Histogram, MetricsSnapshot};
use qrcc_core::pipeline::QrccPipeline;
use qrcc_core::schedule::{DeviceRegistry, Scheduler};
use qrcc_core::{CacheStats, QrccConfig, SchedulePolicy};
use qrcc_sim::device::{Device, DeviceConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Shots each circuit runs on the cold registry's device.
const BASE_SHOTS: u64 = 2048;

/// One measured sweep pass.
struct Phase {
    name: &'static str,
    wall_ms: f64,
    device_shots: u64,
    hits: u64,
    delta_hits: u64,
    misses: u64,
    shots_saved: u64,
    /// Largest |Δp| against the cold pass's reconstruction (0 for cold).
    max_dp: f64,
    /// Per-point request latency (execute + reconstruct) in microseconds.
    latency: Histogram,
}

impl Phase {
    /// Folds this pass into the snapshot behind the shared bench schema:
    /// counters for the cache ledger, a gauge for the output drift, and the
    /// per-request latency histogram (which carries p50/p99 into the JSON).
    fn fold_into(&self, snapshot: MetricsSnapshot) -> MetricsSnapshot {
        snapshot
            .with_counter(&format!("{}.device_shots", self.name), self.device_shots)
            .with_counter(&format!("{}.hits", self.name), self.hits)
            .with_counter(&format!("{}.delta_hits", self.name), self.delta_hits)
            .with_counter(&format!("{}.misses", self.name), self.misses)
            .with_counter(&format!("{}.shots_saved", self.name), self.shots_saved)
            .with_gauge(&format!("{}.wall_ms", self.name), self.wall_ms)
            .with_gauge(&format!("{}.max_dp", self.name), self.max_dp)
            .with_histogram(&format!("{}.request_latency_us", self.name), self.latency.clone())
    }
}

/// A QAOA-style ansatz point: a parameterized entangling chain whose angles
/// vary per sweep point (so every point cuts into the same *structure* but
/// distinct *instantiated* circuits — exactly what content-addressing keys).
fn ansatz(qubits: usize, gamma: f64, beta: f64) -> Circuit {
    let mut c = Circuit::new(qubits);
    for q in 0..qubits {
        c.h(q);
    }
    for q in 0..qubits - 1 {
        c.cx(q, q + 1);
        c.rz(gamma * (1.0 + 0.1 * q as f64), q + 1);
        c.cx(q, q + 1);
    }
    for q in 0..qubits {
        c.ry(2.0 * beta, q);
    }
    c
}

/// Executes the whole sweep once against `scheduler` and reconstructs every
/// point, returning (per-point probabilities, device shots spent, per-point
/// request latency).
fn run_sweep(
    pipelines: &[QrccPipeline],
    scheduler: &Scheduler<'_>,
) -> (Vec<Vec<f64>>, u64, Histogram) {
    let mut outputs = Vec::with_capacity(pipelines.len());
    let mut shots = 0u64;
    let mut latency = Histogram::new();
    for pipeline in pipelines {
        let t = Instant::now();
        let (results, report) = pipeline.execute_scheduled(scheduler).expect("sweep executes");
        shots += report.total_shots;
        let (p, recon) =
            pipeline.reconstruct_probabilities_with_report_from(&results).expect("reconstructs");
        latency.record_duration(t.elapsed());
        assert!(recon.result_cache.is_some(), "cache counters must reach the report");
        outputs.push(p);
    }
    (outputs, shots, latency)
}

/// Largest |Δp| between two sweeps' reconstructions.
fn max_dp(a: &[Vec<f64>], b: &[Vec<f64>]) -> f64 {
    a.iter()
        .zip(b)
        .flat_map(|(x, y)| x.iter().zip(y).map(|(p, q)| (p - q).abs()))
        .fold(0.0, f64::max)
}

#[allow(clippy::too_many_arguments)]
fn phase(
    name: &'static str,
    before: &CacheStats,
    after: &CacheStats,
    wall_ms: f64,
    device_shots: u64,
    max_dp: f64,
    latency: Histogram,
) -> Phase {
    Phase {
        name,
        wall_ms,
        device_shots,
        hits: after.hits - before.hits,
        delta_hits: after.delta_hits - before.delta_hits,
        misses: after.misses - before.misses,
        shots_saved: after.shots_saved - before.shots_saved,
        max_dp,
        latency,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (qubits, points) = if smoke { (5, 4) } else { (6, 12) };

    println!(
        "result-cache benchmark: {points}-point sweep, {qubits}-qubit ansatz on a 3-qubit device\n"
    );

    let config = QrccConfig::new(3)
        .with_subcircuit_range(2, 3)
        .with_ilp_time_limit(Duration::ZERO)
        .with_result_cache(true);
    let pipelines: Vec<QrccPipeline> = (0..points)
        .map(|k| {
            let gamma = 0.3 + 0.07 * k as f64;
            let beta = 0.2 + 0.05 * k as f64;
            QrccPipeline::plan(&ansatz(qubits, gamma, beta), config.clone()).expect("plans")
        })
        .collect();

    // one shared cache; the cold/warm registry samples BASE_SHOTS per
    // circuit, the top-up registry asks for twice that from the same device
    let mut registry = DeviceRegistry::new();
    registry.register_device("dev3", Device::new(DeviceConfig::ideal(3).with_seed(11)), BASE_SHOTS);
    let registry = registry.with_result_cache(&config.result_cache);
    let cache = Arc::clone(registry.result_cache().expect("cache enabled"));
    let scheduler = Scheduler::new(&registry, SchedulePolicy::default());

    let mut upsized = DeviceRegistry::new();
    upsized.register_device(
        "dev3-2x",
        Device::new(DeviceConfig::ideal(3).with_seed(11)),
        2 * BASE_SHOTS,
    );
    upsized.set_result_cache(Arc::clone(&cache));
    let upsized_scheduler = Scheduler::new(&upsized, SchedulePolicy::default());

    let mut phases: Vec<Phase> = Vec::new();

    let s0 = cache.stats();
    let t = Instant::now();
    let (cold_p, cold_shots, cold_latency) = run_sweep(&pipelines, &scheduler);
    let cold_ms = t.elapsed().as_secs_f64() * 1e3;
    let s1 = cache.stats();
    phases.push(phase("cold", &s0, &s1, cold_ms, cold_shots, 0.0, cold_latency));

    let t = Instant::now();
    let (warm_p, warm_shots, warm_latency) = run_sweep(&pipelines, &scheduler);
    let warm_ms = t.elapsed().as_secs_f64() * 1e3;
    let s2 = cache.stats();
    phases.push(phase(
        "warm",
        &s1,
        &s2,
        warm_ms,
        warm_shots,
        max_dp(&cold_p, &warm_p),
        warm_latency,
    ));

    let t = Instant::now();
    let (topup_p, topup_shots, topup_latency) = run_sweep(&pipelines, &upsized_scheduler);
    let topup_ms = t.elapsed().as_secs_f64() * 1e3;
    let s3 = cache.stats();
    phases.push(phase(
        "topup_2x",
        &s2,
        &s3,
        topup_ms,
        topup_shots,
        max_dp(&cold_p, &topup_p),
        topup_latency,
    ));

    println!(
        "{:<10} {:>10} {:>13} {:>6} {:>7} {:>7} {:>12} {:>10} {:>9} {:>9}",
        "phase",
        "wall (ms)",
        "device shots",
        "hits",
        "deltas",
        "misses",
        "shots saved",
        "max |Δp|",
        "p50 (us)",
        "p99 (us)"
    );
    for p in &phases {
        println!(
            "{:<10} {:>10.1} {:>13} {:>6} {:>7} {:>7} {:>12} {:>10.2e} {:>9} {:>9}",
            p.name,
            p.wall_ms,
            p.device_shots,
            p.hits,
            p.delta_hits,
            p.misses,
            p.shots_saved,
            p.max_dp,
            p.latency.p50().unwrap_or(0),
            p.latency.p99().unwrap_or(0),
        );
    }
    let speedup = if warm_ms > 0.0 { cold_ms / warm_ms } else { f64::INFINITY };
    println!(
        "\nwarm pass: {speedup:.1}x wall-clock, {warm_shots} of {cold_shots} cold device shots"
    );

    let (cold, warm, topup) = (&phases[0], &phases[1], &phases[2]);
    // the sweep's circuits deduplicate within a point but not across points,
    // so the warm pass must re-serve every cold miss as a full hit...
    assert_eq!(warm.hits, cold.misses, "every cold miss must warm-hit");
    assert_eq!(warm.misses, 0, "a warm pass has nothing left to miss");
    // ... spending at least 50% fewer device shots at identical output
    assert!(
        2 * warm.device_shots <= cold.device_shots,
        "warm pass must halve device shots: {} vs {}",
        warm.device_shots,
        cold.device_shots
    );
    assert!(warm.max_dp <= 1e-9, "warm output must match cold: max |Δp| = {:.3e}", warm.max_dp);
    // the doubled request is served as deltas: only the missing half runs
    assert_eq!(topup.delta_hits, cold.misses, "every doubled request must delta-hit");
    assert_eq!(
        topup.device_shots, cold.device_shots,
        "a 2x top-up executes exactly the missing half"
    );

    if smoke {
        println!("smoke OK: warm {} shots vs cold {} shots", warm.device_shots, cold.device_shots);
    } else {
        // the shared bench schema: {name, config, metrics{}} rendered by the
        // obs exporter, so every BENCH_*.json parses the same way
        let metrics = phases
            .iter()
            .fold(MetricsSnapshot::default(), |snapshot, p| p.fold_into(snapshot))
            .with_gauge("warm_speedup", speedup)
            .with_gauge(
                "warm_shot_fraction",
                warm.device_shots as f64 / cold.device_shots.max(1) as f64,
            );
        let json = bench_json(
            "bench_cache",
            &[
                ("qubits", qubits.to_string()),
                ("points", points.to_string()),
                ("base_shots", BASE_SHOTS.to_string()),
                ("smoke", smoke.to_string()),
            ],
            &metrics,
        );
        std::fs::write("BENCH_cache.json", &json).expect("write BENCH_cache.json");
        println!("wrote BENCH_cache.json");
    }
}
