//! Table 3 — verification on a (simulated) noisy device: state-vector
//! simulation vs shot-based simulation vs whole-circuit execution on a noisy
//! 7-qubit device vs QRCC (4-qubit noisy device + classical post-processing).
//!
//! The real IBM Lagos backend of the paper is substituted by the calibrated
//! stochastic-Pauli noise model of `qrcc-sim` (see DESIGN.md).
//!
//! Usage: `cargo run --release -p qrcc-bench --bin table3 [--large]`

use qrcc_bench::{harness_config, print_header, Scale};
use qrcc_circuit::generators;
use qrcc_circuit::observable::PauliObservable;
use qrcc_core::pipeline::{QrccPipeline, ShotsBackend};
use qrcc_sim::device::{Device, DeviceConfig};
use qrcc_sim::noise::NoiseModel;
use qrcc_sim::StateVector;

fn accuracy(value: f64, exact: f64) -> f64 {
    if exact.abs() < 1e-12 {
        return if value.abs() < 1e-12 { 100.0 } else { 0.0 };
    }
    100.0 * (1.0 - (value - exact).abs() / exact.abs()).max(0.0)
}

fn main() {
    let scale = Scale::from_args();
    let shots: u64 = if scale == Scale::Paper { 16_384 } else { 4_096 };
    let runs = if scale == Scale::Paper { 10 } else { 3 };

    // REG (m=2), N=7, D=4: the paper's verification workload.
    let (circuit, graph) = generators::qaoa_regular(7, 2, 1, 21);
    let observable = PauliObservable::maxcut(&graph);
    let exact = StateVector::from_circuit(&circuit).unwrap().expectation(&observable);

    // Shot-based (noise-free) simulation of the whole circuit.
    let mut shot_values = Vec::new();
    for run in 0..runs {
        let device = Device::new(DeviceConfig::ideal(7).with_seed(100 + run));
        shot_values.push(device.estimate_expectation(&circuit, &observable, shots).unwrap());
    }
    let shot_sim = shot_values.iter().sum::<f64>() / shot_values.len() as f64;

    // Whole-circuit execution on a noisy 7-qubit device (IBM-Lagos-like noise).
    let noise = NoiseModel::ibm_lagos_like();
    let mut device_values = Vec::new();
    for run in 0..runs {
        let device = Device::new(DeviceConfig::noisy(7, noise).with_seed(200 + run));
        device_values.push(device.estimate_expectation(&circuit, &observable, shots).unwrap());
    }
    let device_execution = device_values.iter().sum::<f64>() / device_values.len() as f64;

    // QRCC: cut to 4-qubit subcircuits, run on a noisy 4-qubit device,
    // reconstruct classically.
    let config = harness_config(4, 0.7, true).with_subcircuit_range(2, 3);
    let pipeline = match QrccPipeline::plan(&circuit, config) {
        Ok(pipeline) => pipeline,
        Err(e) => {
            eprintln!("could not plan REG(7) for a 4-qubit device: {e}");
            return;
        }
    };
    let plan = pipeline.plan_ref();
    println!(
        "QRCC plan: {} subcircuits, {} wire cuts, {} gate cuts, {} subcircuit instances",
        plan.num_subcircuits(),
        plan.wire_cut_count(),
        plan.gate_cut_count(),
        pipeline.total_instances()
    );
    let backend =
        ShotsBackend::new(Device::new(DeviceConfig::noisy(4, noise).with_seed(300)), shots);
    // One deduplicated batch of noisy subcircuit runs serves every Pauli term.
    let results = pipeline.execute_observables(&backend, &[&observable]).unwrap();
    println!(
        "batch execution: {} variant requests → {} noisy device runs after dedup",
        results.requested(),
        results.executed()
    );
    let qrcc_value = pipeline.reconstruct_expectation_from(&results, &observable).unwrap();

    print_header(
        "Table 3: REG(m=2), N=7, D=4 — expectation value and accuracy",
        &["Execution mode", "Result", "Accuracy"],
    );
    println!("{:<28} | {:>8.4} | {:>6.1}%", "State Vector simulation", exact, 100.0);
    println!(
        "{:<28} | {:>8.4} | {:>6.1}%",
        "Shot-based Simulation",
        shot_sim,
        accuracy(shot_sim, exact)
    );
    println!(
        "{:<28} | {:>8.4} | {:>6.1}%",
        "Device Execution (7-qubit)",
        device_execution,
        accuracy(device_execution, exact)
    );
    println!(
        "{:<28} | {:>8.4} | {:>6.1}%",
        "QRCC-B (4-qubit + post-proc)",
        qrcc_value,
        accuracy(qrcc_value, exact)
    );
    println!(
        "\nPaper shape: QRCC accuracy > shot-based simulation > whole-circuit noisy execution."
    );
}
