//! Table 6 — applying CutQC and qubit reuse *sequentially* (cut for an
//! X-qubit device, then compress each subcircuit with the CaQR-style reuse
//! pass) versus QRCC's integrated search.
//!
//! Usage: `cargo run --release -p qrcc-bench --bin table6 [--large]`

use qrcc_bench::{harness_config, print_header, Scale};
use qrcc_circuit::generators;
use qrcc_core::cutqc::CutQcPlanner;
use qrcc_core::fragment::FragmentSet;
use qrcc_core::planner::CutPlanner;

fn main() {
    let scale = Scale::from_args();
    let (n, d) = if scale == Scale::Paper { (15, 7) } else { (10, 5) };
    let circuit = generators::qft(n);

    // QRCC integrated result.
    let qrcc = CutPlanner::new(harness_config(d, 1.0, false)).plan(&circuit).ok();
    match &qrcc {
        Some(plan) => println!(
            "QRCC (integrated): {} subcircuits, {} cuts, max width {}",
            plan.num_subcircuits(),
            plan.wire_cut_count(),
            plan.metrics().max_width()
        ),
        None => println!("QRCC (integrated): no solution for D={d}"),
    }

    print_header(
        &format!("Table 6: CutQC(X) + qubit reuse, target D={d}, QFT N={n}"),
        &["X (CutQC device)", "#SC", "#cuts", "width before reuse", "width after reuse", "fits D?"],
    );
    for x in (d + 1)..n {
        let plan = match CutQcPlanner::new(x).plan(&circuit) {
            Ok(plan) => plan,
            Err(_) => {
                println!(
                    "{:>16} | {:>4} | {:>5} | {:>18} | {:>17} | {:>7}",
                    x, "-", "-", "No Solution", "-", "-"
                );
                continue;
            }
        };
        // Sanity-check that the CutQC plan materialises into fragments, then
        // apply qubit reuse to each subcircuit: the reuse-aware width of the
        // same cut solution is exactly what the CaQR-style pass achieves.
        if let Ok(fragments) = FragmentSet::from_plan(&plan) {
            debug_assert_eq!(fragments.fragments.len(), plan.num_subcircuits());
        }
        let width_before = plan.metrics().max_width();
        let reuse_widths = plan.solution().subcircuit_widths(plan.dag(), true);
        let width_after = reuse_widths.iter().copied().max().unwrap_or(width_before);
        println!(
            "{:>16} | {:>4} | {:>5} | {:>18} | {:>17} | {:>7}",
            x,
            plan.num_subcircuits(),
            plan.wire_cut_count(),
            width_before,
            width_after,
            if width_after <= d { "yes" } else { "no" }
        );
    }
    println!(
        "\nPaper shape: sequential CutQC+reuse needs either far more cuts or still does not fit D;"
    );
    println!("the integrated QRCC search reaches D directly with fewer cuts.");
}
