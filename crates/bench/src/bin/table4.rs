//! Table 4 — search-time comparison between the QRCC ILP model and the
//! CutQC-style MIP model, both solved with the workspace's own
//! branch-and-bound solver (the paper uses Gurobi; see DESIGN.md).
//!
//! Both models are given the same number of subcircuits and the same time
//! budget; the row reports wall-clock time and whether the solve was optimal.
//!
//! Usage: `cargo run --release -p qrcc-bench --bin table4 [--large]`

use qrcc_bench::{print_header, Scale};
use qrcc_circuit::dag::CircuitDag;
use qrcc_circuit::generators;
use qrcc_core::cutqc::solve_cutqc_model;
use qrcc_core::model::solve_qrcc_model;
use qrcc_core::QrccConfig;
use std::time::Duration;

fn main() {
    let scale = Scale::from_args();
    let time_limit = Duration::from_secs(if scale == Scale::Paper { 120 } else { 20 });
    let cases: Vec<(&str, qrcc_circuit::Circuit, usize, usize)> = match scale {
        Scale::Small => vec![
            ("SPM", generators::supremacy(2, 3, 3, 7), 4, 2),
            ("SPM", generators::supremacy(2, 4, 3, 7), 5, 2),
            ("QFT", generators::qft(5), 4, 2),
            ("QFT", generators::qft(6), 5, 2),
            ("ADD", generators::ripple_carry_adder(2, 1), 4, 2),
            ("AQFT", generators::aqft(7, 3), 5, 2),
        ],
        Scale::Paper => vec![
            ("SPM", generators::supremacy(3, 5, 8, 7), 7, 3),
            ("QFT", generators::qft(15), 9, 2),
            ("ADD", generators::ripple_carry_adder(7, 1), 7, 4),
            ("AQFT", generators::aqft(15, 5), 7, 4),
        ],
    };

    print_header(
        "Table 4: model solve time, QRCC ILP vs CutQC-style MIP",
        &["Bench", "N", "D", "CutQC time (s)", "QRCC time (s)", "Improvement"],
    );
    for (name, circuit, device, num_subcircuits) in cases {
        let dag = CircuitDag::from_circuit(&circuit);
        let config = QrccConfig::new(device);
        let qrcc = solve_qrcc_model(&dag, &config, num_subcircuits, time_limit);
        let cutqc = solve_cutqc_model(&dag, device, num_subcircuits, time_limit);
        let qrcc_time = qrcc.as_ref().map(|(_, _, t)| t.as_secs_f64());
        let cutqc_time = cutqc.as_ref().map(|(_, _, t)| t.as_secs_f64());
        let improvement = match (cutqc_time, qrcc_time) {
            (Some(c), Some(q)) if c > 0.0 => format!("{:.0}%", 100.0 * (c - q) / c),
            _ => "-".to_string(),
        };
        println!(
            "{:<5} | {:>3} | {:>3} | {:>14} | {:>13} | {:>10}",
            name,
            circuit.num_qubits(),
            device,
            cutqc_time.map(|t| format!("{t:.2}")).unwrap_or_else(|| "timeout".into()),
            qrcc_time.map(|t| format!("{t:.2}")).unwrap_or_else(|| "timeout".into()),
            improvement
        );
    }
    println!("\nPaper shape: the linear QRCC model solves faster than the CutQC-style model.");
}
