//! Figure 7 — average number of cuts as a function of the N/D ratio for
//! small, medium and large circuits.
//!
//! Usage: `cargo run --release -p qrcc-bench --bin figure7 [--large]`

use qrcc_bench::{harness_config, print_header, Scale};
use qrcc_circuit::generators;
use qrcc_core::planner::CutPlanner;

fn main() {
    let scale = Scale::from_args();
    let sizes: Vec<(&str, usize)> = match scale {
        Scale::Small => vec![("small", 24), ("medium", 36), ("large", 48)],
        Scale::Paper => vec![("small", 50), ("medium", 80), ("large", 170)],
    };
    let ratios = [1.2, 1.4, 1.6, 1.8, 2.0];

    print_header(
        "Figure 7: average #cuts vs N/D ratio",
        &["circuit", "N", "N/D", "D", "avg #cuts (REG/BAR/ERD)"],
    );
    for (label, n) in sizes {
        for ratio in ratios {
            let d = ((n as f64 / ratio).round() as usize).max(2);
            let workloads = vec![
                generators::qaoa_regular(n, 3, 1, 1).0,
                generators::qaoa_barabasi_albert(n, 2, 1, 2).0,
                generators::qaoa_erdos_renyi(n, 3.0 / n as f64, 1, 3).0,
            ];
            let mut cuts = Vec::new();
            for circuit in workloads {
                if let Ok(plan) =
                    CutPlanner::new(harness_config(d, 1.0, true)).with_max_sweeps(12).plan(&circuit)
                {
                    cuts.push(plan.metrics().effective_cuts());
                }
            }
            let avg = if cuts.is_empty() {
                f64::NAN
            } else {
                cuts.iter().sum::<f64>() / cuts.len() as f64
            };
            println!("{:<7} | {:>4} | {:>4.1} | {:>4} | {:>8.1}", label, n, ratio, d, avg);
        }
    }
    println!("\nPaper shape: #cuts grow with the N/D ratio, faster for larger/denser circuits.");
}
