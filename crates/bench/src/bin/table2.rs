//! Table 2 — wire-cut vs wire+gate-cut comparison on the expectation-value
//! benchmarks (REG, ERD, BAR, IS/XY/HS and their next-nearest variants, VQE).
//!
//! Usage: `cargo run --release -p qrcc-bench --bin table2 [--large]`

use qrcc_bench::{average_reduction, harness_config, print_header, table2_workloads, Scale};
use qrcc_core::cutqc::CutQcPlanner;
use qrcc_core::planner::CutPlanner;

fn main() {
    let scale = Scale::from_args();
    print_header(
        "Table 2: W-Cut vs W-Cut+G-Cut (expectation-value benchmarks)",
        &[
            "Bench",
            "N",
            "D",
            "CutQC #cuts",
            "QRCC-C W-only #cuts",
            "QRCC-C W+G (#W/#G/#EffCuts)",
            "#MS",
        ],
    );
    let mut reductions_wire = Vec::new();
    let mut reductions_both = Vec::new();
    for (workload, device) in table2_workloads(scale) {
        let cutqc = CutQcPlanner::new(device).plan(&workload.circuit).ok();
        let wire_only =
            CutPlanner::new(harness_config(device, 1.0, false)).plan(&workload.circuit).ok();
        let both = CutPlanner::new(harness_config(device, 1.0, true)).plan(&workload.circuit).ok();
        let cutqc_cuts = cutqc
            .as_ref()
            .map(|p| p.wire_cut_count().to_string())
            .unwrap_or_else(|| "No Solution".into());
        let wire_cuts = wire_only
            .as_ref()
            .map(|p| p.wire_cut_count().to_string())
            .unwrap_or_else(|| "No Solution".into());
        let both_desc = both
            .as_ref()
            .map(|p| {
                format!(
                    "{}/{}/{:.2}",
                    p.wire_cut_count(),
                    p.gate_cut_count(),
                    p.metrics().effective_cuts()
                )
            })
            .unwrap_or_else(|| "No Solution".into());
        let ms =
            both.as_ref().map(|p| p.metrics().max_two_qubit_gates.to_string()).unwrap_or_default();
        println!(
            "{:<5} | {:>3} | {:>3} | {:>12} | {:>12} | {:>16} | {:>5}",
            workload.name, workload.n, device, cutqc_cuts, wire_cuts, both_desc, ms
        );
        if let (Some(base), Some(w)) = (&cutqc, &wire_only) {
            reductions_wire.push((base.wire_cut_count() as f64, w.wire_cut_count() as f64));
        }
        if let (Some(base), Some(b)) = (&cutqc, &both) {
            reductions_both.push((base.wire_cut_count() as f64, b.metrics().effective_cuts()));
        }
    }
    println!(
        "\nAverage effective-cut reduction vs CutQC: W-only {:.0}%  W+G {:.0}%  (paper: 41% / 44%)",
        100.0 * average_reduction(&reductions_wire),
        100.0 * average_reduction(&reductions_both),
    );
}
