//! Figure 5 — sweeping the δ meta-parameter: normalized cut count (left
//! axis of the paper's figure) and normalized #MS (right axis) as δ moves
//! priority between post-processing cost and fidelity balancing.
//!
//! Usage: `cargo run --release -p qrcc-bench --bin figure5 [--large]`

use qrcc_bench::{harness_config, print_header, table2_workloads, Scale};
use qrcc_core::planner::CutPlanner;

fn main() {
    let scale = Scale::from_args();
    // A subset of the expectation benchmarks keeps the sweep fast; --large
    // uses all of them.
    let workloads = {
        let mut w = table2_workloads(scale);
        if scale == Scale::Small {
            w.truncate(4);
        }
        w
    };

    let deltas: Vec<f64> = (1..=10).map(|i| i as f64 / 10.0).collect();
    print_header(
        "Figure 5: δ sweep (values averaged over benchmarks)",
        &[
            "delta",
            "avg #EffCuts",
            "normalized cuts (vs δ=1)",
            "avg #MS",
            "normalized #MS (vs circuit)",
        ],
    );

    // Reference values at δ = 1 for the normalisation.
    let mut rows = Vec::new();
    for &delta in &deltas {
        let mut cut_sum = 0.0;
        let mut ms_sum = 0.0;
        let mut ms_fraction_sum = 0.0;
        let mut count = 0.0;
        for (workload, device) in &workloads {
            let config = harness_config(*device, delta, true);
            if let Ok(plan) = CutPlanner::new(config).with_max_sweeps(20).plan(&workload.circuit) {
                cut_sum += plan.metrics().effective_cuts();
                ms_sum += plan.metrics().max_two_qubit_gates as f64;
                ms_fraction_sum += plan.metrics().max_two_qubit_gates as f64
                    / workload.circuit.two_qubit_gate_count().max(1) as f64;
                count += 1.0;
            }
        }
        if count > 0.0 {
            rows.push((delta, cut_sum / count, ms_sum / count, ms_fraction_sum / count));
        }
    }
    let reference_cuts = rows.last().map(|r| r.1).unwrap_or(1.0).max(1e-9);
    for (delta, cuts, ms, ms_fraction) in rows {
        println!(
            "{:>5.1} | {:>12.2} | {:>24.2} | {:>7.1} | {:>27.2}",
            delta,
            cuts,
            cuts / reference_cuts,
            ms,
            ms_fraction
        );
    }
    println!(
        "\nPaper shape: cuts decrease and #MS increases as δ grows; cuts stabilise for δ > 0.5."
    );
}
