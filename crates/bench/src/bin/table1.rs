//! Table 1 — wire-cut-only comparison of CutQC, QRCC-C and QRCC-B on the
//! probability-distribution benchmarks (QFT, SPM, ADD, AQFT).
//!
//! Usage: `cargo run --release -p qrcc-bench --bin table1 [--large]`

use qrcc_bench::{
    average_reduction, compare_planners, format_metrics, print_header, table1_workloads, Scale,
};

fn main() {
    let scale = Scale::from_args();
    let workloads = table1_workloads(scale);
    print_header(
        "Table 1: W-Cut comparison (#SC / #cuts / #MS per scheme)",
        &["Bench", "N", "D", "CutQC", "QRCC-C", "QRCC-B"],
    );
    let mut reductions_c = Vec::new();
    let mut reductions_b = Vec::new();
    for (workload, device) in workloads {
        let row = compare_planners(&workload, device, false);
        println!(
            "{:<5} | {:>3} | {:>3} | {} | {} | {}",
            row.name,
            row.n,
            row.d,
            format_metrics(&row.cutqc),
            format_metrics(&row.qrcc_c),
            format_metrics(&row.qrcc_b),
        );
        if let (Some(base), Some(c)) = (&row.cutqc, &row.qrcc_c) {
            reductions_c.push((base.wire_cuts as f64, c.wire_cuts as f64));
        }
        if let (Some(base), Some(b)) = (&row.cutqc, &row.qrcc_b) {
            reductions_b.push((base.wire_cuts as f64, b.wire_cuts as f64));
        }
    }
    println!(
        "\nAverage cut reduction vs CutQC: QRCC-C {:.0}%  QRCC-B {:.0}%  (paper: 29% / 24%)",
        100.0 * average_reduction(&reductions_c),
        100.0 * average_reduction(&reductions_b),
    );
}
