//! Figure 6 — post-processing overhead (log₂ #FP operations) versus the
//! number of cuts for the reconstruction strategies: FRP_32, FRP_48, ARP_2,
//! ARP_4, FRE, against the FSS (full-state simulation) threshold — plus a
//! measured dispatch demo: one scheduled multi-device run with its
//! per-backend routing stats and shots-spent accounting.
//!
//! Usage: `cargo run --release -p qrcc-bench --bin figure6`

use qrcc_bench::print_header;
use qrcc_circuit::Circuit;
use qrcc_core::pipeline::QrccPipeline;
use qrcc_core::reconstruct::cost::{
    arp_log2_flops, fre_log2_flops, frp_log2_flops, fss_threshold_log2, max_tolerable_cuts,
};
use qrcc_core::schedule::{DeviceRegistry, Scheduler};
use qrcc_core::{QrccConfig, SchedulePolicy};
use qrcc_sim::device::{Device, DeviceConfig};
use std::time::Duration;

fn main() {
    print_header(
        "Figure 6: log2(#FP) of reconstruction vs number of cuts",
        &["#cuts", "FRP_32", "FRP_48", "ARP_2", "ARP_4", "FRE", "FSS threshold"],
    );
    let threshold = fss_threshold_log2();
    for cuts in (1..=49).step_by(4) {
        println!(
            "{:>5} | {:>7.1} | {:>7.1} | {:>6.1} | {:>6.1} | {:>5.1} | {:>12.1}",
            cuts,
            frp_log2_flops(32, cuts),
            frp_log2_flops(48, cuts),
            arp_log2_flops(48, cuts, 2),
            arp_log2_flops(48, cuts, 4),
            fre_log2_flops(cuts as f64),
            threshold
        );
    }
    // `max_tolerable_cuts` distinguishes "tolerates zero cuts" (Some(0))
    // from "intolerable even uncut" (None).
    let tolerated = |cuts: Option<usize>| match cuts {
        Some(c) => c.to_string(),
        None => "none (over threshold even uncut)".to_string(),
    };
    println!("\nMaximum #cuts tolerated before exceeding the FSS threshold:");
    println!("  FRP_48: {}", tolerated(max_tolerable_cuts(|c| frp_log2_flops(48, c), 128)));
    println!("  FRP_32: {}", tolerated(max_tolerable_cuts(|c| frp_log2_flops(32, c), 128)));
    println!("  ARP_2 : {}", tolerated(max_tolerable_cuts(|c| arp_log2_flops(48, c, 2), 128)));
    println!("  ARP_4 : {}", tolerated(max_tolerable_cuts(|c| arp_log2_flops(48, c, 4), 128)));
    println!("  FRE   : {}", tolerated(max_tolerable_cuts(|c| fre_log2_flops(c as f64), 128)));
    println!("\nPaper shape: FRE ≫ ARP-4 > ARP-2 > FRP in cut tolerance; FRP_48 ≈ 16 cuts, FRE ≈ 40 cuts.");

    scheduled_dispatch_demo();
}

/// Post-processing cost is only half the overhead story at scale — dispatch
/// is the other (see the scalability study in PAPERS.md). Run one scheduled
/// multi-device batch and print where the circuits and shots actually went.
fn scheduled_dispatch_demo() {
    let mut circuit = Circuit::new(6);
    circuit.h(0);
    for q in 0..5 {
        circuit.cx(q, q + 1);
        circuit.ry(0.21 * (q as f64 + 1.0), q + 1);
    }
    let config = QrccConfig::new(3)
        .with_subcircuit_range(2, 3)
        .with_qubit_reuse(false)
        .with_ilp_time_limit(Duration::ZERO);
    let pipeline = QrccPipeline::plan(&circuit, config).expect("plan");
    let mut registry = DeviceRegistry::new();
    registry.register_device("dev3", Device::new(DeviceConfig::ideal(3).with_seed(7)), 1);
    registry.register_device("dev2", Device::new(DeviceConfig::ideal(2).with_seed(13)), 1);
    let policy = SchedulePolicy::with_budget(100_000).with_min_shots(64).with_chunk_size(4);
    let scheduler = Scheduler::new(&registry, policy);
    let (results, report) = pipeline.execute_scheduled(&scheduler).expect("schedule");
    let (_, reconstruction) =
        pipeline.reconstruct_probabilities_with_report_from(&results).expect("reconstruct");

    println!(
        "\nScheduled dispatch demo (6q chain on 3q+2q devices, {} shot budget, {:?} allocation):",
        report.total_shots, report.allocation
    );
    println!(
        "  {} circuits in {} chunks; requested {} variants, executed {} after dedup",
        report.circuits,
        report.chunks,
        results.requested(),
        results.executed()
    );
    for usage in results.routing() {
        println!(
            "  {:>6}: {:>3} circuits, {:>6} shots",
            usage.backend, usage.circuits, usage.shots
        );
    }
    println!(
        "  reconstruction consumed {} shots across {} backends ({:?} strategy)",
        reconstruction.shots_spent, reconstruction.backends_used, reconstruction.strategy
    );
}
