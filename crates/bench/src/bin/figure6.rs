//! Figure 6 — post-processing overhead (log₂ #FP operations) versus the
//! number of cuts for the reconstruction strategies: FRP_32, FRP_48, ARP_2,
//! ARP_4, FRE, against the FSS (full-state simulation) threshold.
//!
//! Usage: `cargo run --release -p qrcc-bench --bin figure6`

use qrcc_bench::print_header;
use qrcc_core::reconstruct::cost::{
    arp_log2_flops, fre_log2_flops, frp_log2_flops, fss_threshold_log2, max_tolerable_cuts,
};

fn main() {
    print_header(
        "Figure 6: log2(#FP) of reconstruction vs number of cuts",
        &["#cuts", "FRP_32", "FRP_48", "ARP_2", "ARP_4", "FRE", "FSS threshold"],
    );
    let threshold = fss_threshold_log2();
    for cuts in (1..=49).step_by(4) {
        println!(
            "{:>5} | {:>7.1} | {:>7.1} | {:>6.1} | {:>6.1} | {:>5.1} | {:>12.1}",
            cuts,
            frp_log2_flops(32, cuts),
            frp_log2_flops(48, cuts),
            arp_log2_flops(48, cuts, 2),
            arp_log2_flops(48, cuts, 4),
            fre_log2_flops(cuts as f64),
            threshold
        );
    }
    // `max_tolerable_cuts` distinguishes "tolerates zero cuts" (Some(0))
    // from "intolerable even uncut" (None).
    let tolerated = |cuts: Option<usize>| match cuts {
        Some(c) => c.to_string(),
        None => "none (over threshold even uncut)".to_string(),
    };
    println!("\nMaximum #cuts tolerated before exceeding the FSS threshold:");
    println!("  FRP_48: {}", tolerated(max_tolerable_cuts(|c| frp_log2_flops(48, c), 128)));
    println!("  FRP_32: {}", tolerated(max_tolerable_cuts(|c| frp_log2_flops(32, c), 128)));
    println!("  ARP_2 : {}", tolerated(max_tolerable_cuts(|c| arp_log2_flops(48, c, 2), 128)));
    println!("  ARP_4 : {}", tolerated(max_tolerable_cuts(|c| arp_log2_flops(48, c, 4), 128)));
    println!("  FRE   : {}", tolerated(max_tolerable_cuts(|c| fre_log2_flops(c as f64), 128)));
    println!("\nPaper shape: FRE ≫ ARP-4 > ARP-2 > FRP in cut tolerance; FRP_48 ≈ 16 cuts, FRE ≈ 40 cuts.");
}
