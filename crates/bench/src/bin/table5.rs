//! Table 5 — scalability vs circuit size and connectivity: cut counts for
//! large QAOA-style circuits as the interaction graph gets denser.
//!
//! Usage: `cargo run --release -p qrcc-bench --bin table5 [--large]`

use qrcc_bench::{harness_config, print_header, Scale};
use qrcc_circuit::generators;
use qrcc_core::cutqc::CutQcPlanner;
use qrcc_core::planner::CutPlanner;

fn main() {
    let scale = Scale::from_args();
    let cases: Vec<(String, usize, usize, qrcc_circuit::Circuit)> = match scale {
        Scale::Small => vec![
            ("REG (m=3)".into(), 40, 30, generators::qaoa_regular(40, 3, 1, 1).0),
            ("REG (m=3)".into(), 60, 40, generators::qaoa_regular(60, 3, 1, 1).0),
            ("REG (m=4)".into(), 40, 30, generators::qaoa_regular(40, 4, 1, 2).0),
            ("REG (m=4)".into(), 60, 40, generators::qaoa_regular(60, 4, 1, 2).0),
            ("BAR (m=4)".into(), 40, 30, generators::qaoa_barabasi_albert(40, 4, 1, 3).0),
            ("BAR (m=2)".into(), 60, 40, generators::qaoa_barabasi_albert(60, 2, 1, 3).0),
            ("ERD (p=0.1)".into(), 40, 30, generators::qaoa_erdos_renyi(40, 0.1, 1, 4).0),
            ("ERD (p=0.05)".into(), 60, 40, generators::qaoa_erdos_renyi(60, 0.05, 1, 4).0),
        ],
        Scale::Paper => vec![
            ("REG (m=3)".into(), 200, 150, generators::qaoa_regular(200, 3, 1, 1).0),
            ("REG (m=3)".into(), 300, 200, generators::qaoa_regular(300, 3, 1, 1).0),
            ("REG (m=4)".into(), 200, 150, generators::qaoa_regular(200, 4, 1, 2).0),
            ("REG (m=4)".into(), 300, 200, generators::qaoa_regular(300, 4, 1, 2).0),
            ("BAR (m=4)".into(), 200, 150, generators::qaoa_barabasi_albert(200, 4, 1, 3).0),
            ("BAR (m=2)".into(), 300, 200, generators::qaoa_barabasi_albert(300, 2, 1, 3).0),
            ("ERD (p=0.05)".into(), 200, 150, generators::qaoa_erdos_renyi(200, 0.05, 1, 4).0),
            ("ERD (p=0.02)".into(), 300, 200, generators::qaoa_erdos_renyi(300, 0.02, 1, 4).0),
        ],
    };

    print_header(
        "Table 5: scalability vs circuit connectivity",
        &["Bench", "N", "D", "QRCC #W-Cuts", "QRCC #G-Cuts", "CutQC #W-Cuts"],
    );
    for (name, n, d, circuit) in cases {
        let qrcc =
            CutPlanner::new(harness_config(d, 1.0, true)).with_max_sweeps(15).plan(&circuit).ok();
        let cutqc = CutQcPlanner::new(d).plan(&circuit).ok();
        println!(
            "{:<12} | {:>3} | {:>3} | {:>12} | {:>12} | {:>13}",
            name,
            n,
            d,
            qrcc.as_ref()
                .map(|p| p.wire_cut_count().to_string())
                .unwrap_or_else(|| "No Solution".into()),
            qrcc.as_ref().map(|p| p.gate_cut_count().to_string()).unwrap_or_default(),
            cutqc
                .as_ref()
                .map(|p| p.wire_cut_count().to_string())
                .unwrap_or_else(|| "No Solution".into()),
        );
    }
    println!("\nPaper shape: denser graphs (larger m / p) need roughly proportionally more cuts;");
    println!("QRCC keeps finding solutions where the no-reuse baseline starts failing.");
}
