//! Observability overhead benchmark: proves the PR 9 tracing instrumentation
//! is free when disabled (the default). Writes `BENCH_obs.json` in the
//! working directory.
//!
//! Usage: `cargo run --release -p qrcc-bench --bin bench_obs [--smoke]`
//!
//! The pre-instrumentation baseline cannot be re-measured from this binary,
//! so "within noise of the baseline" is established constructively:
//!
//! 1. tracing is **off by default** and a default-config pipeline run
//!    records zero spans;
//! 2. one *disabled* span callsite costs a single relaxed atomic load —
//!    measured here and gated at 150 ns/op (it measures ~1-5 ns);
//! 3. the workload's instrumented callsite count (counted by running once
//!    with tracing on) times that per-callsite cost must stay under 1% of
//!    the tracing-off workload wall-clock — the total disabled overhead is
//!    therefore below timer noise, i.e. statistically indistinguishable
//!    from the uninstrumented baseline.
//!
//! `--smoke` runs fewer repetitions and skips the JSON dump — the CI gate.

use qrcc_circuit::Circuit;
use qrcc_core::obs::{bench_json, tracer, MetricsSnapshot};
use qrcc_core::pipeline::QrccPipeline;
use qrcc_core::schedule::{DeviceRegistry, Scheduler};
use qrcc_core::{QrccConfig, SchedulePolicy};
use qrcc_sim::device::{Device, DeviceConfig};
use std::time::{Duration, Instant};

/// Gate on the per-callsite cost of a *disabled* span (one relaxed atomic
/// load; measures single-digit nanoseconds — 150 keeps CI machines happy).
const DISABLED_NS_PER_SPAN_CAP: f64 = 150.0;

/// Gate on the predicted total disabled-instrumentation overhead as a
/// fraction of the workload's wall-clock.
const OVERHEAD_FRACTION_CAP: f64 = 0.01;

fn workload_circuit() -> Circuit {
    let mut circuit = Circuit::new(6);
    circuit.h(0);
    for q in 0..5 {
        circuit.cx(q, q + 1);
        circuit.ry(0.17 * (q as f64 + 1.0), q + 1);
    }
    circuit
}

fn workload_config() -> QrccConfig {
    QrccConfig::new(3).with_subcircuit_range(2, 3).with_ilp_time_limit(Duration::ZERO)
}

/// Best-of-`reps` wall-clock of one full streaming pipeline run.
fn run_workload(pipeline: &QrccPipeline, scheduler: &Scheduler<'_>, reps: usize) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..reps {
        let t = Instant::now();
        let (probabilities, _, _) = pipeline.execute_streaming(scheduler).expect("workload runs");
        best = best.min(t.elapsed());
        std::hint::black_box(probabilities);
        // keep the span buffer from saturating across repetitions
        let _ = tracer().drain();
    }
    best
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let reps = if smoke { 3 } else { 5 };

    // 1. Off by default: the config ships with tracing disabled, and a run
    //    under it records nothing.
    let config = workload_config();
    assert!(!config.obs.enabled, "tracing must be off by default");

    let mut registry = DeviceRegistry::new();
    registry.register_device("dev3", Device::new(DeviceConfig::ideal(3).with_seed(5)), 256);
    let scheduler = Scheduler::new(&registry, SchedulePolicy::default());

    let pipeline_off = QrccPipeline::plan(&workload_circuit(), config).expect("plans");
    let off = run_workload(&pipeline_off, &scheduler, reps);
    assert!(tracer().drain().is_empty(), "a default-config run must record zero spans");

    // 2. One disabled span callsite = one relaxed atomic load. Measure it
    //    while the global tracer is still disabled.
    assert!(!tracer().enabled(), "microbench requires the disabled tracer");
    let iterations = 2_000_000u64;
    let t = Instant::now();
    for _ in 0..iterations {
        std::hint::black_box(tracer().span("bench.noop"));
    }
    let disabled_ns_per_span = t.elapsed().as_nanos() as f64 / iterations as f64;

    // 3. Count the workload's instrumented callsites by running once with
    //    tracing on (this also exercises the enabled path end to end).
    let pipeline_on = QrccPipeline::plan(&workload_circuit(), workload_config().with_tracing(true))
        .expect("plans");
    let _ = tracer().drain();
    let on = run_workload(&pipeline_on, &scheduler, reps);
    let t = Instant::now();
    let (probabilities, reconstruction, _) =
        pipeline_on.execute_streaming(&scheduler).expect("traced run");
    let _ = t.elapsed();
    std::hint::black_box(probabilities);
    let spans_per_run = tracer().drain().len() as u64;
    assert!(spans_per_run > 0, "the traced run must record spans");
    assert!(reconstruction.profile.is_some(), "the traced run must attach a phase profile");

    // The whole point: every disabled callsite costs ~one atomic load, so
    // the instrumentation's total cost with tracing off is bounded by
    // (callsites hit) x (disabled cost) — and that bound must vanish into
    // the workload's timer noise.
    let predicted_off_overhead_ns = spans_per_run as f64 * disabled_ns_per_span;
    let overhead_fraction = predicted_off_overhead_ns / off.as_nanos().max(1) as f64;

    println!("observability overhead: best of {reps} runs\n");
    println!("workload, tracing off:  {off:>10.3?}");
    println!("workload, tracing on:   {on:>10.3?}");
    println!("disabled span callsite: {disabled_ns_per_span:>10.2} ns/op");
    println!("spans per traced run:   {spans_per_run:>10}");
    println!(
        "predicted off-overhead:  {:>9.1} us ({:.4}% of workload)",
        predicted_off_overhead_ns / 1e3,
        100.0 * overhead_fraction
    );

    assert!(
        disabled_ns_per_span <= DISABLED_NS_PER_SPAN_CAP,
        "a disabled span callsite must stay under {DISABLED_NS_PER_SPAN_CAP} ns, \
         measured {disabled_ns_per_span:.1} ns"
    );
    assert!(
        overhead_fraction <= OVERHEAD_FRACTION_CAP,
        "disabled instrumentation must stay under {:.0}% of the workload wall-clock, \
         predicted {:.3}%",
        100.0 * OVERHEAD_FRACTION_CAP,
        100.0 * overhead_fraction
    );

    if smoke {
        println!("\nsmoke OK: tracing-off overhead within noise of the uninstrumented baseline");
    } else {
        let metrics = MetricsSnapshot::default()
            .with_counter("spans_per_traced_run", spans_per_run)
            .with_gauge("workload_off_ms", off.as_secs_f64() * 1e3)
            .with_gauge("workload_on_ms", on.as_secs_f64() * 1e3)
            .with_gauge("disabled_ns_per_span", disabled_ns_per_span)
            .with_gauge("predicted_off_overhead_fraction", overhead_fraction);
        let json = bench_json(
            "bench_obs",
            &[("repeats", reps.to_string()), ("smoke", smoke.to_string())],
            &metrics,
        );
        std::fs::write("BENCH_obs.json", &json).expect("write BENCH_obs.json");
        println!("\nwrote BENCH_obs.json");
    }
}
