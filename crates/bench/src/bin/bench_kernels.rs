//! Kernel-compiler benchmark: interpreted vs compiled wall-clock per gate
//! family and per benchmark circuit family, with the compiler's fusion and
//! specialization coverage. Writes `BENCH_kernels.json` in the working
//! directory.
//!
//! Usage: `cargo run --release -p qrcc-bench --bin bench_kernels [--smoke]`
//!
//! `--smoke` runs scaled-down sizes and exits non-zero unless the compiled
//! path is at least as fast as the interpreter on the fusion-heavy family —
//! the CI guard against compiled-path regressions. The full run records the
//! numbers quoted in the README.

use qrcc_circuit::generators::{self, HamiltonianKind};
use qrcc_circuit::Circuit;
use qrcc_core::obs::{bench_json, MetricsSnapshot};
use qrcc_sim::compile::FramedProgram;
use qrcc_sim::StateVector;
use std::time::Instant;

/// One measured row: a named circuit, both wall-clocks, and the compiler's
/// view of it.
struct Row {
    name: String,
    qubits: usize,
    gates: usize,
    kernels: usize,
    interpreted_ms: f64,
    compiled_ms: f64,
    compile_ms: f64,
    fusion_ratio: f64,
    coverage: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        if self.compiled_ms > 0.0 {
            self.interpreted_ms / self.compiled_ms
        } else {
            f64::INFINITY
        }
    }

    /// Folds this row into the snapshot behind the shared bench schema,
    /// namespaced `{group}.{family}.{field}` (counts as counters, timings
    /// and ratios as gauges).
    fn fold_into(&self, group: &str, snapshot: MetricsSnapshot) -> MetricsSnapshot {
        let key = |field: &str| format!("{group}.{}.{field}", self.name);
        snapshot
            .with_counter(&key("qubits"), self.qubits as u64)
            .with_counter(&key("gates"), self.gates as u64)
            .with_counter(&key("kernels"), self.kernels as u64)
            .with_gauge(&key("interpreted_ms"), self.interpreted_ms)
            .with_gauge(&key("compiled_ms"), self.compiled_ms)
            .with_gauge(&key("compile_ms"), self.compile_ms)
            .with_gauge(&key("speedup"), self.speedup())
            .with_gauge(&key("fusion_ratio"), self.fusion_ratio)
            .with_gauge(&key("coverage"), self.coverage)
    }
}

/// Best-of-`reps` wall-clock of `f`, in milliseconds.
fn time_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// Measures one circuit: interpreted `StateVector::from_circuit` vs the
/// compiled program's `run_unitary`, plus one-shot compile cost.
fn measure(name: &str, circuit: &Circuit, reps: usize) -> Row {
    let t = Instant::now();
    let program = FramedProgram::compile(circuit);
    let compile_ms = t.elapsed().as_secs_f64() * 1e3;
    let interpreted_ms = time_ms(reps, || {
        StateVector::from_circuit(circuit).unwrap();
    });
    let compiled_ms = time_ms(reps, || {
        program.run_unitary().unwrap();
    });
    let stats = program.stats();
    Row {
        name: name.to_string(),
        qubits: circuit.num_qubits(),
        gates: stats.gates_in as usize,
        kernels: stats.kernels_out as usize,
        interpreted_ms,
        compiled_ms,
        compile_ms,
        fusion_ratio: stats.fusion_ratio(),
        coverage: stats.coverage(),
    }
}

/// Fusion-heavy family: long single-qubit runs with a sparse entangling
/// skeleton — the workload the compiler exists for, and the smoke gate.
fn fusion_heavy(n: usize, depth: usize) -> Circuit {
    let mut c = Circuit::new(n);
    for layer in 0..depth {
        for q in 0..n {
            let t = 0.1 + 0.01 * (layer * n + q) as f64;
            c.h(q).rz(t, q).s(q).u3(t, 0.2, 0.4, q).t(q).rx(1.3 * t, q);
        }
        c.cx(layer % n, (layer + 1) % n);
    }
    c
}

/// Diagonal family: multiply-only sweeps (rz/t/s/cz/cp/rzz).
fn diagonal(n: usize, depth: usize) -> Circuit {
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.h(q);
    }
    c.barrier();
    for layer in 0..depth {
        for q in 0..n {
            c.rz(0.2 + 0.01 * q as f64, q).t(q);
        }
        for q in 0..n - 1 {
            if (layer + q) % 2 == 0 {
                c.cz(q, q + 1);
            } else {
                c.cp(0.3, q, q + 1);
            }
        }
        c.barrier();
    }
    c
}

/// Permutation family: index remaps and controlled flips (x/swap/cx/cy).
fn permutation(n: usize, depth: usize) -> Circuit {
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.h(q);
    }
    c.barrier();
    for layer in 0..depth {
        for q in 0..n {
            c.x(q);
        }
        c.barrier();
        for q in 0..n - 1 {
            if (layer + q) % 2 == 0 {
                c.cx(q, q + 1);
            } else {
                c.swap(q, q + 1);
            }
        }
        c.barrier();
    }
    c
}

/// Dense two-qubit family: rxx/ryy kernels the compiler cannot specialize —
/// the floor case where compiled ≈ interpreted.
fn dense_2q(n: usize, depth: usize) -> Circuit {
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.h(q);
    }
    c.barrier();
    for layer in 0..depth {
        for q in 0..n - 1 {
            if (layer + q) % 2 == 0 {
                c.rxx(0.4, q, q + 1);
            } else {
                c.ryy(0.3, q, q + 1);
            }
        }
        c.barrier();
    }
    c
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (n, depth, reps) = if smoke { (12, 8, 3) } else { (16, 16, 5) };

    println!("kernel benchmark: {n} qubits, depth {depth}, best of {reps} runs\n");
    let header = format!(
        "{:<16} {:>6} {:>8} {:>12} {:>12} {:>8} {:>7} {:>9}",
        "family", "gates", "kernels", "interp (ms)", "compiled", "speedup", "fusion", "coverage"
    );

    println!("-- gate families --\n{header}");
    let gate_families: Vec<Row> = vec![
        measure("fusion_heavy", &fusion_heavy(n, depth), reps),
        measure("diagonal", &diagonal(n, depth), reps),
        measure("permutation", &permutation(n, depth), reps),
        measure("dense_2q", &dense_2q(n, depth), reps),
    ];
    for row in &gate_families {
        print_row(row);
    }

    let (sup_r, sup_c) = if smoke { (3, 4) } else { (4, 4) };
    println!("\n-- benchmark circuit families --\n{header}");
    let circuit_families: Vec<Row> = vec![
        measure("QFT", &generators::qft(n), reps),
        measure("AQFT", &generators::aqft(n, n / 2), reps),
        measure("SPM", &generators::supremacy(sup_r, sup_c, 8, 7), reps),
        measure("ADD", &generators::ripple_carry_adder((n - 2) / 2, 11), reps),
        measure("REG", &generators::qaoa_regular(n, 3, 2, 5).0, reps),
        measure(
            "TFIM",
            &generators::hamiltonian_simulation(
                HamiltonianKind::TransverseFieldIsing,
                4,
                n / 4,
                false,
                3,
                0.1,
            )
            .0,
            reps,
        ),
        measure("VQE", &generators::vqe_two_local(n, 3, 13), reps),
    ];
    for row in &circuit_families {
        print_row(row);
    }

    let covered: f64 = circuit_families.iter().map(|r| r.coverage * r.gates as f64).sum();
    let total: f64 = circuit_families.iter().map(|r| r.gates as f64).sum();
    let aggregate_coverage = covered / total;
    println!(
        "\naggregate benchmark coverage: {:.1}% of gates fused or specialized",
        100.0 * aggregate_coverage
    );

    if smoke {
        // CI guard: the compiled path must not lose to the interpreter on the
        // workload it was built for. A small tolerance absorbs timer jitter.
        let row = &gate_families[0];
        assert!(
            row.compiled_ms <= row.interpreted_ms * 1.05,
            "compiled path regressed on {}: {:.3} ms compiled vs {:.3} ms interpreted",
            row.name,
            row.compiled_ms,
            row.interpreted_ms,
        );
        println!(
            "smoke OK: fusion_heavy compiled {:.3} ms <= interpreted {:.3} ms",
            row.compiled_ms, row.interpreted_ms
        );
    } else {
        // the shared bench schema: {name, config, metrics{}} rendered by the
        // obs exporter, so every BENCH_*.json parses the same way
        let mut metrics = MetricsSnapshot::default();
        for row in &gate_families {
            metrics = row.fold_into("gate", metrics);
        }
        for row in &circuit_families {
            metrics = row.fold_into("circuit", metrics);
        }
        metrics = metrics.with_gauge("aggregate_coverage", aggregate_coverage);
        let json = bench_json(
            "bench_kernels",
            &[
                ("qubits", n.to_string()),
                ("depth", depth.to_string()),
                ("repeats", reps.to_string()),
                ("smoke", smoke.to_string()),
            ],
            &metrics,
        );
        std::fs::write("BENCH_kernels.json", &json).expect("write BENCH_kernels.json");
        println!("wrote BENCH_kernels.json");
    }
}

fn print_row(row: &Row) {
    println!(
        "{:<16} {:>6} {:>8} {:>12.3} {:>12.3} {:>7.2}x {:>6.2}x {:>8.1}%",
        row.name,
        row.gates,
        row.kernels,
        row.interpreted_ms,
        row.compiled_ms,
        row.speedup(),
        row.fusion_ratio,
        100.0 * row.coverage,
    );
}
