//! Shared harness utilities for regenerating the paper's tables and figures.
//!
//! Each table/figure has a dedicated binary in `src/bin/` (`table1` …
//! `table6`, `figure5` … `figure7`). All binaries accept `--large` to run at
//! the paper's original problem sizes (slow without a commercial ILP solver);
//! the default sizes are scaled down so the whole harness completes on a
//! laptop while exercising identical code paths.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use qrcc_circuit::generators::{self, HamiltonianKind};
use qrcc_circuit::graph::Graph;
use qrcc_circuit::observable::PauliObservable;
use qrcc_circuit::Circuit;
use qrcc_core::cutqc::CutQcPlanner;
use qrcc_core::planner::{CutPlan, CutPlanner};
use qrcc_core::{CoreError, CutMetrics, QrccConfig};
use std::time::Duration;

/// Problem-size selection for the harness binaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Scaled-down sizes (default): identical code paths, laptop-friendly.
    Small,
    /// The paper's original sizes (pass `--large`).
    Paper,
}

impl Scale {
    /// Parses the scale from command-line arguments (`--large` selects
    /// [`Scale::Paper`]).
    pub fn from_args() -> Scale {
        if std::env::args().any(|a| a == "--large") {
            Scale::Paper
        } else {
            Scale::Small
        }
    }
}

/// A named workload instance: the circuit, its benchmark label, and the
/// expectation observable when the benchmark computes one.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Paper-style benchmark label (e.g. `QFT`, `REG`).
    pub name: String,
    /// Number of qubits.
    pub n: usize,
    /// The circuit.
    pub circuit: Circuit,
    /// The observable for expectation-value benchmarks (`None` for
    /// probability-distribution benchmarks).
    pub observable: Option<PauliObservable>,
    /// The interaction graph if the workload is graph-based.
    pub graph: Option<Graph>,
}

impl Workload {
    fn new(name: impl Into<String>, circuit: Circuit) -> Self {
        let n = circuit.num_qubits();
        Workload { name: name.into(), n, circuit, observable: None, graph: None }
    }

    fn with_observable(mut self, observable: PauliObservable) -> Self {
        self.observable = Some(observable);
        self
    }

    fn with_graph(mut self, graph: Graph) -> Self {
        self.graph = Some(graph);
        self
    }
}

/// The probability-distribution workloads of Table 1 with their device sizes.
pub fn table1_workloads(scale: Scale) -> Vec<(Workload, usize)> {
    match scale {
        Scale::Small => vec![
            (Workload::new("QFT", generators::qft(10)), 6),
            (Workload::new("QFT", generators::qft(12)), 8),
            (Workload::new("SPM", generators::supremacy(3, 4, 6, 7)), 7),
            (Workload::new("SPM", generators::supremacy(3, 5, 6, 7)), 8),
            (Workload::new("ADD", generators::ripple_carry_adder(5, 1)), 7),
            (Workload::new("ADD", generators::ripple_carry_adder(6, 1)), 8),
            (Workload::new("AQFT", generators::aqft(12, 4)), 7),
            (Workload::new("AQFT", generators::aqft(14, 4)), 8),
        ],
        Scale::Paper => vec![
            (Workload::new("QFT", generators::qft(15)), 7),
            (Workload::new("QFT", generators::qft(15)), 9),
            (Workload::new("QFT", generators::qft(30)), 16),
            (Workload::new("QFT", generators::qft(30)), 24),
            (Workload::new("SPM", generators::supremacy(3, 5, 8, 7)), 7),
            (Workload::new("SPM", generators::supremacy(4, 5, 8, 7)), 7),
            (Workload::new("SPM", generators::supremacy(5, 6, 8, 7)), 16),
            (Workload::new("ADD", generators::ripple_carry_adder(7, 1)), 7),
            (Workload::new("ADD", generators::ripple_carry_adder(10, 1)), 7),
            (Workload::new("ADD", generators::ripple_carry_adder(14, 1)), 16),
            (Workload::new("AQFT", generators::aqft(15, 5)), 7),
            (Workload::new("AQFT", generators::aqft(20, 5)), 7),
            (Workload::new("AQFT", generators::aqft(30, 5)), 16),
        ],
    }
}

/// The expectation-value workloads of Table 2 with their device sizes.
pub fn table2_workloads(scale: Scale) -> Vec<(Workload, usize)> {
    let (n_small, d_small) = (12, 8);
    let qaoa_layers = 1;
    let mut result = Vec::new();
    match scale {
        Scale::Small => {
            let (c, g) = generators::qaoa_regular(n_small, 3, qaoa_layers, 1);
            result.push((
                Workload::new("REG", c).with_observable(PauliObservable::maxcut(&g)).with_graph(g),
                d_small,
            ));
            let (c, g) = generators::qaoa_erdos_renyi(n_small, 0.25, qaoa_layers, 2);
            result.push((
                Workload::new("ERD", c).with_observable(PauliObservable::maxcut(&g)).with_graph(g),
                d_small,
            ));
            let (c, g) = generators::qaoa_barabasi_albert(n_small, 2, qaoa_layers, 3);
            result.push((
                Workload::new("BAR", c).with_observable(PauliObservable::maxcut(&g)).with_graph(g),
                d_small,
            ));
            for (kind, name) in [
                (HamiltonianKind::TransverseFieldIsing, "IS"),
                (HamiltonianKind::Xy, "XY"),
                (HamiltonianKind::Heisenberg, "HS"),
            ] {
                let (c, g) = generators::hamiltonian_simulation(kind, 3, 4, false, 1, 0.1);
                result.push((
                    Workload::new(name, c)
                        .with_observable(PauliObservable::ising(&g, 1.0, 0.5))
                        .with_graph(g),
                    d_small,
                ));
                let (c, g) = generators::hamiltonian_simulation(kind, 3, 4, true, 1, 0.1);
                result.push((
                    Workload::new(format!("{name}-n"), c)
                        .with_observable(PauliObservable::ising(&g, 1.0, 0.5))
                        .with_graph(g),
                    d_small,
                ));
            }
            let c = generators::vqe_two_local(n_small, 2, 4);
            result.push((
                Workload::new("VQE", c).with_observable(PauliObservable::all_z(n_small)),
                d_small,
            ));
        }
        Scale::Paper => {
            for (n, d) in [(40, 27), (50, 27)] {
                let (c, g) = generators::qaoa_regular(n, 5, qaoa_layers, 1);
                result.push((
                    Workload::new("REG", c)
                        .with_observable(PauliObservable::maxcut(&g))
                        .with_graph(g),
                    d,
                ));
                let (c, g) = generators::qaoa_erdos_renyi(n, 0.1, qaoa_layers, 2);
                result.push((
                    Workload::new("ERD", c)
                        .with_observable(PauliObservable::maxcut(&g))
                        .with_graph(g),
                    d,
                ));
                let (c, g) = generators::qaoa_barabasi_albert(n, 3, qaoa_layers, 3);
                result.push((
                    Workload::new("BAR", c)
                        .with_observable(PauliObservable::maxcut(&g))
                        .with_graph(g),
                    d,
                ));
            }
            for (kind, name, rows, cols) in [
                (HamiltonianKind::TransverseFieldIsing, "IS", 6, 6),
                (HamiltonianKind::Xy, "XY", 6, 6),
                (HamiltonianKind::Heisenberg, "HS", 6, 6),
                (HamiltonianKind::TransverseFieldIsing, "IS-n", 6, 6),
                (HamiltonianKind::Xy, "XY-n", 6, 7),
                (HamiltonianKind::Heisenberg, "HS-n", 6, 7),
            ] {
                let next_nearest = name.ends_with("-n");
                let (c, g) =
                    generators::hamiltonian_simulation(kind, rows, cols, next_nearest, 1, 0.1);
                result.push((
                    Workload::new(name, c)
                        .with_observable(PauliObservable::ising(&g, 1.0, 0.5))
                        .with_graph(g),
                    27,
                ));
            }
            for n in [42, 50] {
                let c = generators::vqe_two_local(n, 2, 4);
                result
                    .push((Workload::new("VQE", c).with_observable(PauliObservable::all_z(n)), 27));
            }
        }
    }
    result
}

/// One comparison row: the metrics of each scheme (`None` = no solution).
#[derive(Debug, Clone)]
pub struct ComparisonRow {
    /// Benchmark label.
    pub name: String,
    /// Circuit size `N`.
    pub n: usize,
    /// Device size `D`.
    pub d: usize,
    /// CutQC baseline result.
    pub cutqc: Option<CutMetrics>,
    /// QRCC-C (δ = 1) result.
    pub qrcc_c: Option<CutMetrics>,
    /// QRCC-B (δ = 0.7) result.
    pub qrcc_b: Option<CutMetrics>,
}

/// Planner configuration shared by the harness: heuristic-only (the exact ILP
/// refinement is disabled by default so large workloads stay tractable).
pub fn harness_config(device: usize, delta: f64, gate_cuts: bool) -> QrccConfig {
    QrccConfig::new(device)
        .with_delta(delta)
        .with_gate_cuts(gate_cuts)
        .with_ilp_time_limit(Duration::ZERO)
}

/// Runs the three planners of Table 1 / Table 2 on one workload.
pub fn compare_planners(workload: &Workload, device: usize, gate_cuts: bool) -> ComparisonRow {
    let plan_metrics = |plan: Result<CutPlan, CoreError>| plan.ok().map(|p| p.metrics().clone());
    let cutqc = plan_metrics(CutQcPlanner::new(device).plan(&workload.circuit));
    let qrcc_c = plan_metrics(
        CutPlanner::new(harness_config(device, 1.0, gate_cuts)).plan(&workload.circuit),
    );
    let qrcc_b = plan_metrics(
        CutPlanner::new(harness_config(device, 0.7, gate_cuts)).plan(&workload.circuit),
    );
    ComparisonRow { name: workload.name.clone(), n: workload.n, d: device, cutqc, qrcc_c, qrcc_b }
}

/// Formats one scheme's metrics as `#SC / #cuts / #MS` (or `No Solution`).
pub fn format_metrics(metrics: &Option<CutMetrics>) -> String {
    match metrics {
        None => "No Solution".to_string(),
        Some(m) => format!(
            "{:>3} {:>6} {:>5}",
            m.num_subcircuits,
            if m.gate_cuts > 0 {
                format!("{:.2}", m.effective_cuts())
            } else {
                format!("{}", m.wire_cuts)
            },
            m.max_two_qubit_gates
        ),
    }
}

/// Prints a markdown-ish table header used by the table binaries.
pub fn print_header(title: &str, columns: &[&str]) {
    println!("\n== {title} ==");
    println!("{}", columns.join(" | "));
    println!("{}", vec!["---"; columns.len()].join(" | "));
}

/// Geometric-mean helper used for "average reduction" summaries.
pub fn average_reduction(pairs: &[(f64, f64)]) -> f64 {
    if pairs.is_empty() {
        return 0.0;
    }
    let total: f64 = pairs
        .iter()
        .filter(|(base, _)| *base > 0.0)
        .map(|(base, improved)| (base - improved) / base)
        .sum();
    total / pairs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_lists_are_nonempty_and_labelled() {
        let t1 = table1_workloads(Scale::Small);
        assert!(t1.len() >= 6);
        assert!(t1.iter().all(|(w, d)| w.n > *d));
        let t2 = table2_workloads(Scale::Small);
        assert!(t2.len() >= 8);
        assert!(t2.iter().all(|(w, _)| w.observable.is_some()));
    }

    #[test]
    fn comparison_row_runs_on_a_small_workload() {
        let workload = Workload::new("ADD", generators::ripple_carry_adder(3, 1));
        let row = compare_planners(&workload, 5, false);
        assert!(row.qrcc_c.is_some());
        let m = row.qrcc_c.unwrap();
        assert!(m.subcircuit_widths.iter().all(|&w| w <= 5));
    }

    #[test]
    fn average_reduction_is_a_fraction() {
        let r = average_reduction(&[(10.0, 5.0), (20.0, 20.0)]);
        assert!((r - 0.25).abs() < 1e-12);
        assert_eq!(average_reduction(&[]), 0.0);
    }

    #[test]
    fn format_metrics_handles_missing_solutions() {
        assert_eq!(format_metrics(&None), "No Solution");
    }
}
