//! Ablation benchmarks for the design choices called out in DESIGN.md:
//! qubit reuse on/off, gate cuts on/off, and the δ fidelity-balancing weight.
//! Each variant plans the same workload so the timing and the resulting cut
//! counts (printed once per run) can be compared directly.

use criterion::{criterion_group, criterion_main, Criterion};
use qrcc_circuit::generators;
use qrcc_core::planner::CutPlanner;
use qrcc_core::QrccConfig;
use std::time::Duration;

fn base_config(d: usize) -> QrccConfig {
    QrccConfig::new(d).with_ilp_time_limit(Duration::ZERO)
}

fn bench_reuse_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_qubit_reuse");
    group.sample_size(10);
    let circuit = generators::vqe_two_local(12, 2, 3);
    for (label, reuse) in [("with_reuse", true), ("without_reuse", false)] {
        let config = base_config(7).with_qubit_reuse(reuse);
        group.bench_function(label, |b| {
            b.iter(|| CutPlanner::new(config.clone()).plan(&circuit).map(|p| p.wire_cut_count()));
        });
        if let Ok(plan) = CutPlanner::new(config).plan(&circuit) {
            eprintln!("ablation_qubit_reuse/{label}: {} wire cuts", plan.wire_cut_count());
        }
    }
    group.finish();
}

fn bench_gate_cut_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_gate_cuts");
    group.sample_size(10);
    let (circuit, _) = generators::qaoa_regular(12, 3, 1, 1);
    for (label, gate_cuts) in [("wire_only", false), ("wire_and_gate", true)] {
        let config = base_config(8).with_gate_cuts(gate_cuts);
        group.bench_function(label, |b| {
            b.iter(|| {
                CutPlanner::new(config.clone()).plan(&circuit).map(|p| p.metrics().effective_cuts())
            });
        });
        if let Ok(plan) = CutPlanner::new(config).plan(&circuit) {
            eprintln!(
                "ablation_gate_cuts/{label}: {:.2} effective cuts",
                plan.metrics().effective_cuts()
            );
        }
    }
    group.finish();
}

fn bench_delta_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_delta");
    group.sample_size(10);
    let (circuit, _) = generators::qaoa_regular(12, 3, 1, 1);
    for delta in [0.2, 0.7, 1.0] {
        let config = base_config(8).with_delta(delta).with_gate_cuts(true);
        group.bench_function(format!("delta_{delta}"), |b| {
            b.iter(|| {
                CutPlanner::new(config.clone())
                    .plan(&circuit)
                    .map(|p| p.metrics().max_two_qubit_gates)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_reuse_ablation, bench_gate_cut_ablation, bench_delta_ablation);
criterion_main!(benches);
