//! Criterion benchmarks of the async dispatch subsystem:
//!
//! * **blocking vs async dispatch at varying in-flight windows** — a window
//!   of 1 reproduces the old blocking scheduler (the next chunk is not
//!   dispatched until the consumer accepted the previous one); wider windows
//!   let execution run ahead of a slow consumer. On queue-latency devices
//!   ([`QueueBackend`]) the window is the lever that overlaps device queue
//!   time with reconstruction.
//! * **failure rates** — the retry machinery's overhead at 0% (fault-free
//!   fast path), and end-to-end cost when a seeded fraction of jobs drops
//!   once and re-routes to a healthy device.

use criterion::{criterion_group, criterion_main, Criterion};
use qrcc_circuit::Circuit;
use qrcc_core::dispatch::{FlakyBackend, QueueBackend};
use qrcc_core::execute::ExactBackend;
use qrcc_core::pipeline::QrccPipeline;
use qrcc_core::schedule::{DeviceRegistry, Scheduler};
use qrcc_core::{QrccConfig, SchedulePolicy};
use std::time::Duration;

/// A 10-qubit chain cut for a 4-qubit device: enough deduplicated circuits
/// that chunking, windows and retries have real work to do.
fn workload() -> QrccPipeline {
    let n = 10;
    let mut circuit = Circuit::new(n);
    circuit.h(0);
    for q in 0..n - 1 {
        circuit.cx(q, q + 1);
        circuit.ry(0.13 * (q as f64 + 1.0), q + 1);
    }
    let config = QrccConfig::new(4)
        .with_subcircuit_range(2, 4)
        .with_qubit_reuse(false)
        .with_ilp_time_limit(Duration::ZERO);
    QrccPipeline::plan(&circuit, config).expect("plan")
}

/// Two exact devices behind simulated 2 ms job queues — the setting where
/// overlapping dispatch with reconstruction actually pays.
fn queued_registry() -> DeviceRegistry {
    let latency = Duration::from_millis(2);
    let mut registry = DeviceRegistry::new();
    registry.register("queued-a", QueueBackend::new(ExactBackend::capped(4), latency));
    registry.register("queued-b", QueueBackend::new(ExactBackend::capped(4), latency));
    registry
}

/// Blocking (window 1) vs async (wider windows, unbounded) dispatch over
/// queue-latency devices, streaming into incremental reconstruction.
fn bench_in_flight_windows(c: &mut Criterion) {
    let pipeline = workload();
    let registry = queued_registry();
    let mut group = c.benchmark_group("dispatch_window");
    group.sample_size(10);
    for (label, window) in
        [("blocking_window_1", 1usize), ("async_window_4", 4), ("async_unbounded", 0)]
    {
        let policy = SchedulePolicy::default().with_chunk_size(2).with_max_in_flight_chunks(window);
        let scheduler = Scheduler::new(&registry, policy);
        group.bench_function(label, |b| {
            b.iter(|| {
                let (probabilities, _, report) = pipeline.execute_streaming(&scheduler).unwrap();
                assert!(window == 0 || report.dispatch.max_in_flight_chunks <= window);
                probabilities
            });
        });
    }
    group.finish();
}

/// Retry overhead at varying failure rates: a flaky device drops a seeded
/// fraction of its jobs once, and each drop re-routes to the healthy device.
fn bench_failure_rates(c: &mut Criterion) {
    let pipeline = workload();
    let mut group = c.benchmark_group("dispatch_failure_rate");
    group.sample_size(10);
    for (label, fraction) in [("fault_free", 0.0), ("drop_20pct", 0.2), ("drop_60pct", 0.6)] {
        let policy = SchedulePolicy::default()
            .with_chunk_size(2)
            .with_max_in_flight_chunks(2)
            .with_max_retries(3);
        group.bench_function(label, |b| {
            b.iter(|| {
                // fresh registry per run: transient-fault bookkeeping resets,
                // so every iteration injects the same failure schedule
                let mut registry = DeviceRegistry::new();
                registry.register(
                    "flaky",
                    FlakyBackend::transient(ExactBackend::capped(4), 17, fraction),
                );
                registry.register("steady", ExactBackend::capped(4));
                let scheduler = Scheduler::new(&registry, policy);
                let (results, report) = pipeline.execute_scheduled(&scheduler).unwrap();
                assert!(fraction == 0.0 || report.dispatch.failures > 0);
                results.unique_variants()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_in_flight_windows, bench_failure_rates);
criterion_main!(benches);
