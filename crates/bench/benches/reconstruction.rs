//! Criterion benchmarks of classical post-processing.
//!
//! * end-to-end probability / expectation reconstruction (including variant
//!   execution on the exact backend),
//! * **dense vs contract**: the two executable strategies on the same
//!   pre-executed batch of a multi-fragment chain plan (reconstruction only,
//!   no execution inside the timed loop) — the measured counterpart of the
//!   Figure 6 FRP-vs-ARP cost models,
//! * **dense thread scaling**: the rayon-parallel dense component loop at 1
//!   worker thread vs all cores.

use criterion::{criterion_group, criterion_main, Criterion};
use qrcc_circuit::observable::PauliObservable;
use qrcc_circuit::Circuit;
use qrcc_core::pipeline::{ExactBackend, QrccPipeline};
use qrcc_core::reconstruct::{ProbabilityReconstructor, ReconstructionOptions};
use qrcc_core::{QrccConfig, ReconstructionStrategy};
use std::time::Duration;

fn chain_circuit(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    c.h(0);
    for q in 0..n - 1 {
        c.cx(q, q + 1);
        c.ry(0.1 * (q as f64 + 1.0), q + 1);
    }
    c
}

fn config(d: usize, gate_cuts: bool) -> QrccConfig {
    QrccConfig::new(d)
        .with_subcircuit_range(2, 3)
        .with_gate_cuts(gate_cuts)
        .with_ilp_time_limit(Duration::ZERO)
}

fn bench_probability_reconstruction(c: &mut Criterion) {
    let mut group = c.benchmark_group("probability_reconstruction");
    group.sample_size(10);
    let circuit = chain_circuit(6);
    let pipeline = QrccPipeline::plan(&circuit, config(4, false)).unwrap();
    group.bench_function("chain6_d4", |b| {
        b.iter(|| {
            let backend = ExactBackend::new();
            pipeline.reconstruct_probabilities(&backend).unwrap()
        });
    });
    group.finish();
}

fn bench_expectation_reconstruction(c: &mut Criterion) {
    let mut group = c.benchmark_group("expectation_reconstruction");
    group.sample_size(10);
    let (circuit, graph) = qrcc_circuit::generators::qaoa_regular(6, 2, 1, 5);
    let observable = PauliObservable::maxcut(&graph);
    let pipeline = QrccPipeline::plan(&circuit, config(4, true)).unwrap();
    group.bench_function("qaoa6_d4_maxcut", |b| {
        b.iter(|| {
            let backend = ExactBackend::new();
            pipeline.reconstruct_expectation(&backend, &observable).unwrap()
        });
    });
    group.finish();
}

/// A chain plan with one fragment per link: `fragments` fragments and
/// `fragments − 1` wire cuts, the sweet spot of pairwise contraction.
fn chain_plan(n: usize) -> QrccPipeline {
    let config = QrccConfig::new(2)
        .with_subcircuit_range(n - 1, n - 1)
        .with_qubit_reuse(false)
        .with_ilp_time_limit(Duration::ZERO);
    QrccPipeline::plan(&chain_circuit(n), config).unwrap()
}

/// Dense vs contract on the same pre-executed batch: the timed loop runs
/// reconstruction only. The chain plan has ≥ 3 fragments, where the cut
/// graph is maximally sparse and contraction undercuts the global 4^cuts
/// loop.
fn bench_dense_vs_contract(c: &mut Criterion) {
    let mut group = c.benchmark_group("strategy");
    group.sample_size(10);
    // 8 fragments, 7 cuts: dense loops 4^7 · 2^8 combinations, contraction
    // never holds more than a couple of legs at once.
    let pipeline = chain_plan(9);
    assert!(pipeline.fragments().fragments.len() >= 3);
    let backend = ExactBackend::new();
    let results = pipeline.execute(&backend).unwrap();
    for strategy in [ReconstructionStrategy::Dense, ReconstructionStrategy::Contract] {
        let reconstructor = ProbabilityReconstructor::with_options(ReconstructionOptions {
            strategy,
            prune_tolerance: 0.0,
        });
        group.bench_function(format!("chain9_{strategy:?}"), |b| {
            b.iter(|| reconstructor.reconstruct(pipeline.fragments(), &results).unwrap());
        });
    }
    // pruned contraction: drops the chain's many exactly-redundant entries
    let pruned = ProbabilityReconstructor::with_options(ReconstructionOptions {
        strategy: ReconstructionStrategy::Contract,
        prune_tolerance: 1e-12,
    });
    group.bench_function("chain9_Contract_pruned", |b| {
        b.iter(|| pruned.reconstruct(pipeline.fragments(), &results).unwrap());
    });
    group.finish();
}

/// The dense component loop at 1 rayon worker vs all cores. A 13-qubit
/// chain in six 3-qubit fragments keeps the per-combination payload work
/// (2^13 output slots) heavy enough for parallelism to matter.
///
/// NOTE: toggling `RAYON_NUM_THREADS` between measurements only works with
/// the vendored rayon shim, which reads the variable on every parallel
/// call. Real rayon pins its global pool at first use — when the shim is
/// swapped out (see the ROADMAP vendor item), this bench must switch to
/// explicit `ThreadPoolBuilder::build().install(...)` pools or it will
/// silently measure the same thread count twice.
fn bench_dense_thread_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("dense_threads");
    group.sample_size(10);
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    eprintln!("dense_threads: {cores} core(s) available (1thread vs all only differs on >1)");
    let config = QrccConfig::new(3)
        .with_subcircuit_range(6, 6)
        .with_qubit_reuse(false)
        .with_ilp_time_limit(Duration::ZERO);
    let pipeline = QrccPipeline::plan(&chain_circuit(13), config).unwrap();
    let backend = ExactBackend::new();
    let results = pipeline.execute(&backend).unwrap();
    let dense = ProbabilityReconstructor::with_options(ReconstructionOptions {
        strategy: ReconstructionStrategy::Dense,
        prune_tolerance: 0.0,
    });
    let previous = std::env::var("RAYON_NUM_THREADS").ok();
    std::env::set_var("RAYON_NUM_THREADS", "1");
    group.bench_function("chain13_dense_1thread", |b| {
        b.iter(|| dense.reconstruct(pipeline.fragments(), &results).unwrap());
    });
    match &previous {
        Some(v) => std::env::set_var("RAYON_NUM_THREADS", v),
        None => std::env::remove_var("RAYON_NUM_THREADS"),
    }
    group.bench_function("chain13_dense_all_threads", |b| {
        b.iter(|| dense.reconstruct(pipeline.fragments(), &results).unwrap());
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_probability_reconstruction,
    bench_expectation_reconstruction,
    bench_dense_vs_contract,
    bench_dense_thread_scaling,
);
criterion_main!(benches);
