//! Criterion benchmarks of classical post-processing: probability-vector
//! reconstruction (wire cuts) and expectation-value reconstruction
//! (wire + gate cuts), including subcircuit-variant execution on the exact
//! backend.

use criterion::{criterion_group, criterion_main, Criterion};
use qrcc_circuit::observable::PauliObservable;
use qrcc_circuit::Circuit;
use qrcc_core::pipeline::{ExactBackend, QrccPipeline};
use qrcc_core::QrccConfig;
use std::time::Duration;

fn chain_circuit(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    c.h(0);
    for q in 0..n - 1 {
        c.cx(q, q + 1);
        c.ry(0.1 * (q as f64 + 1.0), q + 1);
    }
    c
}

fn config(d: usize, gate_cuts: bool) -> QrccConfig {
    QrccConfig::new(d)
        .with_subcircuit_range(2, 3)
        .with_gate_cuts(gate_cuts)
        .with_ilp_time_limit(Duration::ZERO)
}

fn bench_probability_reconstruction(c: &mut Criterion) {
    let mut group = c.benchmark_group("probability_reconstruction");
    group.sample_size(10);
    let circuit = chain_circuit(6);
    let pipeline = QrccPipeline::plan(&circuit, config(4, false)).unwrap();
    group.bench_function("chain6_d4", |b| {
        b.iter(|| {
            let backend = ExactBackend::new();
            pipeline.reconstruct_probabilities(&backend).unwrap()
        });
    });
    group.finish();
}

fn bench_expectation_reconstruction(c: &mut Criterion) {
    let mut group = c.benchmark_group("expectation_reconstruction");
    group.sample_size(10);
    let (circuit, graph) = qrcc_circuit::generators::qaoa_regular(6, 2, 1, 5);
    let observable = PauliObservable::maxcut(&graph);
    let pipeline = QrccPipeline::plan(&circuit, config(4, true)).unwrap();
    group.bench_function("qaoa6_d4_maxcut", |b| {
        b.iter(|| {
            let backend = ExactBackend::new();
            pipeline.reconstruct_expectation(&backend, &observable).unwrap()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_probability_reconstruction, bench_expectation_reconstruction);
criterion_main!(benches);
