//! Criterion benchmarks of the kernel compiler: interpreted gate-by-gate
//! application vs compiled fused-kernel programs, and the compile +
//! structural-hash cache cost itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qrcc_circuit::generators;
use qrcc_circuit::Circuit;
use qrcc_sim::compile::{FramedProgram, KernelCache};
use qrcc_sim::StateVector;

/// Long single-qubit runs over a sparse entangling skeleton — the workload
/// gate fusion exists for (mirrors `bench_kernels`'s fusion-heavy family).
fn fusion_heavy(n: usize, depth: usize) -> Circuit {
    let mut c = Circuit::new(n);
    for layer in 0..depth {
        for q in 0..n {
            let t = 0.1 + 0.01 * (layer * n + q) as f64;
            c.h(q).rz(t, q).s(q).u3(t, 0.2, 0.4, q).t(q).rx(1.3 * t, q);
        }
        c.cx(layer % n, (layer + 1) % n);
    }
    c
}

fn bench_compiled_vs_interpreted(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_compilation");
    group.sample_size(10);
    for n in [8usize, 12, 16] {
        let circuit = fusion_heavy(n, 8);
        group.bench_with_input(BenchmarkId::new("interpreted", n), &circuit, |b, circuit| {
            b.iter(|| StateVector::from_circuit(circuit).unwrap());
        });
        let program = FramedProgram::compile(&circuit);
        group.bench_with_input(BenchmarkId::new("compiled", n), &program, |b, program| {
            b.iter(|| program.run_unitary().unwrap());
        });
    }
    group.finish();
}

fn bench_qft_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_qft");
    group.sample_size(10);
    let circuit = generators::qft(14);
    group.bench_function("interpreted_14", |b| {
        b.iter(|| StateVector::from_circuit(&circuit).unwrap());
    });
    let program = FramedProgram::compile(&circuit);
    group.bench_function("compiled_14", |b| {
        b.iter(|| program.run_unitary().unwrap());
    });
    group.finish();
}

fn bench_cache_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_cache");
    group.sample_size(10);
    let circuit = fusion_heavy(10, 8);
    group.bench_function("compile_uncached", |b| {
        b.iter(|| FramedProgram::compile(&circuit));
    });
    let cache = KernelCache::new();
    cache.get_or_compile(&circuit);
    group.bench_function("structural_hash_hit", |b| {
        b.iter(|| cache.get_or_compile(&circuit));
    });
    group.finish();
}

criterion_group!(benches, bench_compiled_vs_interpreted, bench_qft_kernels, bench_cache_lookup);
criterion_main!(benches);
