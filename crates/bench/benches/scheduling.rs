//! Criterion benchmarks of the execution scheduler layer:
//!
//! * **uniform vs variance-weighted shot allocation** at the same global
//!   budget — the allocation pass itself is classical bookkeeping, so the
//!   interesting number is that variance weighting costs nothing extra at
//!   dispatch time;
//! * **blocking vs streamed reconstruction** — one scheduled run that
//!   executes everything then reconstructs, against the chunked pipeline
//!   where fragment-tensor folding overlaps device execution. On ideal
//!   simulated devices the fast sampling path makes execution nearly free,
//!   so the streamed variant mostly measures its chunking overhead; the
//!   overlap wins when device latency dominates (noisy trajectory
//!   simulation, real-device queues).

use criterion::{criterion_group, criterion_main, Criterion};
use qrcc_circuit::Circuit;
use qrcc_core::pipeline::QrccPipeline;
use qrcc_core::schedule::{DeviceRegistry, Scheduler};
use qrcc_core::{QrccConfig, SchedulePolicy, ShotAllocation};
use qrcc_sim::device::{Device, DeviceConfig};
use std::time::Duration;

/// A 10-qubit chain cut for a 4-qubit device: several fragments of widths
/// 3–4, enough deduplicated circuits that routing and chunking have real
/// work to do.
fn workload() -> QrccPipeline {
    let n = 10;
    let mut circuit = Circuit::new(n);
    circuit.h(0);
    for q in 0..n - 1 {
        circuit.cx(q, q + 1);
        circuit.ry(0.1 * (q as f64 + 1.0), q + 1);
    }
    let config = QrccConfig::new(4)
        .with_subcircuit_range(2, 4)
        .with_qubit_reuse(false)
        .with_ilp_time_limit(Duration::ZERO);
    QrccPipeline::plan(&circuit, config).expect("plan")
}

fn registry() -> DeviceRegistry {
    let mut registry = DeviceRegistry::new();
    registry.register_device("dev4", Device::new(DeviceConfig::ideal(4).with_seed(3)), 1);
    registry.register_device("dev3", Device::new(DeviceConfig::ideal(3).with_seed(5)), 1);
    registry
}

/// Uniform vs variance-weighted allocation at the same budget: same
/// dispatch machinery, different shot split.
fn bench_allocation_modes(c: &mut Criterion) {
    let pipeline = workload();
    let registry = registry();
    let mut group = c.benchmark_group("shot_allocation");
    group.sample_size(10);
    for allocation in [ShotAllocation::Uniform, ShotAllocation::VarianceWeighted] {
        let policy =
            SchedulePolicy::with_budget(40_000).with_allocation(allocation).with_min_shots(16);
        let scheduler = Scheduler::new(&registry, policy);
        group.bench_function(format!("{allocation:?}"), |b| {
            b.iter(|| {
                let (results, report) = pipeline.execute_scheduled(&scheduler).unwrap();
                assert_eq!(report.total_shots, 40_000);
                results.unique_variants()
            });
        });
    }
    group.finish();
}

/// Blocking (execute everything, then reconstruct) vs streamed (fold each
/// chunk while the next executes) wall-clock, same devices and budget.
fn bench_blocking_vs_streamed(c: &mut Criterion) {
    let pipeline = workload();
    let registry = registry();
    let mut group = c.benchmark_group("streaming");
    group.sample_size(10);

    let blocking_policy = SchedulePolicy::with_budget(40_000).with_min_shots(16);
    let blocking = Scheduler::new(&registry, blocking_policy);
    group.bench_function("blocking_then_reconstruct", |b| {
        b.iter(|| {
            let (results, _) = pipeline.execute_scheduled(&blocking).unwrap();
            pipeline.reconstruct_probabilities_from(&results).unwrap()
        });
    });

    let streamed_policy = SchedulePolicy::with_budget(40_000).with_min_shots(16).with_chunk_size(4);
    let streamed = Scheduler::new(&registry, streamed_policy);
    group.bench_function("streamed_overlapped", |b| {
        b.iter(|| {
            let (probabilities, _, _) = pipeline.execute_streaming(&streamed).unwrap();
            probabilities
        });
    });
    group.finish();
}

criterion_group!(benches, bench_allocation_modes, bench_blocking_vs_streamed);
criterion_main!(benches);
