//! Criterion benchmarks of the simulation substrate: state-vector evolution,
//! shot sampling and noisy trajectory execution.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qrcc_circuit::generators;
use qrcc_sim::device::{Device, DeviceConfig};
use qrcc_sim::noise::NoiseModel;
use qrcc_sim::StateVector;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_statevector(c: &mut Criterion) {
    let mut group = c.benchmark_group("statevector_simulation");
    group.sample_size(10);
    for n in [8usize, 12, 16] {
        let circuit = generators::qft(n);
        group.bench_with_input(BenchmarkId::new("qft", n), &circuit, |b, circuit| {
            b.iter(|| StateVector::from_circuit(circuit).unwrap());
        });
    }
    group.finish();
}

fn bench_shot_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("shot_sampling");
    group.sample_size(10);
    let circuit = generators::supremacy(3, 4, 6, 3);
    let sv = StateVector::from_circuit(&circuit).unwrap();
    group.bench_function("supremacy12_16384_shots", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(7);
            sv.sample_counts(16_384, &mut rng).unwrap()
        });
    });
    group.finish();
}

fn bench_noisy_trajectories(c: &mut Criterion) {
    let mut group = c.benchmark_group("noisy_device_execution");
    group.sample_size(10);
    let (circuit, _) = generators::qaoa_regular(7, 2, 1, 21);
    let mut measured = circuit.clone();
    measured.measure_all();
    let device = Device::new(DeviceConfig::noisy(7, NoiseModel::ibm_lagos_like()).with_seed(1));
    group.bench_function("qaoa7_lagos_noise_1024_shots", |b| {
        b.iter(|| device.execute(&measured, 1024).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_statevector, bench_shot_sampling, bench_noisy_trajectories);
criterion_main!(benches);
