//! Criterion benchmarks of the batch-first execution layer: the
//! rayon-parallel `run_batch` path against serial per-variant `run_one`
//! execution, on a multi-fragment wire-cut workload — the paper's binding
//! constraint at practical sizes is exactly this `4^k·6^m` variant volume.

use criterion::{criterion_group, criterion_main, Criterion};
use qrcc_circuit::Circuit;
use qrcc_core::execute::{execute_requests, ExactBackend, ExecutionBackend};
use qrcc_core::pipeline::QrccPipeline;
use qrcc_core::reconstruct::ProbabilityReconstructor;
use qrcc_core::QrccConfig;
use std::time::{Duration, Instant};

/// A multi-fragment workload: a dense entangled 12-qubit chain cut for a
/// 6-qubit device, yielding several multi-qubit fragments with 4^k wire-cut
/// variants each — big enough that per-circuit simulation cost dominates the
/// batch bookkeeping.
fn workload() -> (QrccPipeline, Vec<Circuit>) {
    let n = 12;
    let mut circuit = Circuit::new(n);
    circuit.h(0);
    for layer in 0..2 {
        for q in 0..n - 1 {
            circuit.cx(q, q + 1);
            circuit.ry(0.1 * (q + layer) as f64 + 0.05, q + 1);
        }
    }
    let config = QrccConfig::new(6).with_subcircuit_range(3, 6).with_ilp_time_limit(Duration::ZERO);
    let pipeline = QrccPipeline::plan(&circuit, config).expect("plan");
    let fragments = pipeline.fragments();
    let requests = ProbabilityReconstructor::new().requests(fragments).expect("requests");
    // materialise the deduplicated circuit batch once for the raw-path benches
    let mut seen = std::collections::HashSet::new();
    let mut circuits = Vec::new();
    for request in &requests {
        if seen.insert(request.key.clone()) {
            circuits.push(fragments.instantiate_key(&request.key).expect("instantiate"));
        }
    }
    (pipeline, circuits)
}

fn bench_batch_vs_serial(c: &mut Criterion) {
    let (pipeline, circuits) = workload();
    eprintln!(
        "execution workload: {} fragments, {} unique variant circuits",
        pipeline.fragments().fragments.len(),
        circuits.len()
    );

    let mut group = c.benchmark_group("variant_execution");
    group.sample_size(10);
    group.bench_function("serial_run_one", |b| {
        b.iter(|| {
            let backend = ExactBackend::new();
            let results: Vec<_> = circuits.iter().map(|c| backend.run_one(c).unwrap()).collect();
            results.len()
        });
    });
    group.bench_function("parallel_run_batch", |b| {
        b.iter(|| {
            let backend = ExactBackend::new();
            let results = backend.run_batch(&circuits);
            assert!(results.iter().all(Result::is_ok));
            results.len()
        });
    });
    group.finish();

    // Headline number: the parallel batch path must beat serial execution on
    // a multi-core machine (single-core machines tie within noise).
    let backend = ExactBackend::new();
    let start = Instant::now();
    for circuit in &circuits {
        backend.run_one(circuit).unwrap();
    }
    let serial = start.elapsed();
    let start = Instant::now();
    let _ = backend.run_batch(&circuits);
    let parallel = start.elapsed();
    eprintln!(
        "serial {serial:?} vs parallel batch {parallel:?} ({:.2}x speedup on {} cores)",
        serial.as_secs_f64() / parallel.as_secs_f64().max(1e-12),
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    );
}

fn bench_end_to_end_batch(c: &mut Criterion) {
    let (pipeline, _) = workload();
    let fragments = pipeline.fragments();
    let requests = ProbabilityReconstructor::new().requests(fragments).expect("requests");
    let mut group = c.benchmark_group("batch_pipeline");
    group.sample_size(10);
    group.bench_function("enumerate_dedup_execute", |b| {
        b.iter(|| {
            let backend = ExactBackend::new();
            execute_requests(fragments, &requests, &backend).unwrap().executed()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_batch_vs_serial, bench_end_to_end_batch);
criterion_main!(benches);
