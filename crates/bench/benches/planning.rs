//! Criterion benchmarks of the cut-search kernels: QRCC heuristic planning,
//! the CutQC-style baseline, and the exact ILP model on a small instance.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qrcc_circuit::dag::CircuitDag;
use qrcc_circuit::generators;
use qrcc_core::cutqc::CutQcPlanner;
use qrcc_core::model::solve_qrcc_model;
use qrcc_core::planner::CutPlanner;
use qrcc_core::QrccConfig;
use std::time::Duration;

fn heuristic_config(d: usize) -> QrccConfig {
    QrccConfig::new(d).with_ilp_time_limit(Duration::ZERO)
}

fn bench_qrcc_planning(c: &mut Criterion) {
    let mut group = c.benchmark_group("qrcc_planning");
    group.sample_size(10);
    for (name, circuit, d) in [
        ("qft12_d8", generators::qft(12), 8),
        ("adder5_d7", generators::ripple_carry_adder(5, 1), 7),
        ("qaoa_reg16_d10", generators::qaoa_regular(16, 3, 1, 1).0, 10),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &circuit, |b, circuit| {
            // `ok()` keeps the benchmark meaningful even if a tight budget
            // makes a particular instance unsolvable for the heuristic.
            b.iter(|| {
                CutPlanner::new(heuristic_config(d)).plan(circuit).ok().map(|p| p.wire_cut_count())
            });
        });
    }
    group.finish();
}

fn bench_cutqc_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("cutqc_baseline_planning");
    group.sample_size(10);
    let circuit = generators::ripple_carry_adder(5, 1);
    group.bench_function("adder5_d7", |b| {
        b.iter(|| CutQcPlanner::new(7).plan(&circuit).ok().map(|p| p.wire_cut_count()));
    });
    group.finish();
}

fn bench_exact_ilp(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_ilp_model");
    group.sample_size(10);
    let mut chain = qrcc_circuit::Circuit::new(6);
    chain.h(0);
    for q in 0..5 {
        chain.cx(q, q + 1);
    }
    let dag = CircuitDag::from_circuit(&chain);
    group.bench_function("ghz6_d3_two_subcircuits", |b| {
        b.iter(|| solve_qrcc_model(&dag, &QrccConfig::new(3), 2, Duration::from_secs(30)).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_qrcc_planning, bench_cutqc_baseline, bench_exact_ilp);
criterion_main!(benches);
