//! Criterion benchmarks of the remote execution transport:
//!
//! * **loopback vs in-process** — the same deduplicated variant batch
//!   executed on a local `ExactBackend` and on the identical backend behind
//!   a loopback `QrccServer`, measuring what the framing, QASM
//!   serialisation/parsing and socket round trips cost on top of the
//!   simulation itself.
//! * **frame-size sweep** — batch submissions of 1, 8 and 32 circuits per
//!   `SubmitBatch` frame: many small frames pay per-round-trip latency,
//!   one big frame amortises it, bounding the useful dispatch chunk sizes
//!   for remote fleets.

use criterion::{criterion_group, criterion_main, Criterion};
use qrcc_circuit::Circuit;
use qrcc_core::execute::{ExactBackend, ExecutionBackend};
use qrcc_core::pipeline::QrccPipeline;
use qrcc_core::reconstruct::ProbabilityReconstructor;
use qrcc_core::QrccConfig;
use qrcc_net::{QrccServer, RemoteBackend};
use std::time::Duration;

/// The deduplicated variant circuits of an 8-qubit chain cut for 4 qubits —
/// a realistic per-chunk payload.
fn workload() -> Vec<Circuit> {
    let n = 8;
    let mut circuit = Circuit::new(n);
    circuit.h(0);
    for q in 0..n - 1 {
        circuit.cx(q, q + 1);
        circuit.ry(0.1 * (q as f64 + 1.0), q + 1);
    }
    let config = QrccConfig::new(4).with_subcircuit_range(2, 4).with_ilp_time_limit(Duration::ZERO);
    let pipeline = QrccPipeline::plan(&circuit, config).expect("plan");
    let fragments = pipeline.fragments();
    let requests = ProbabilityReconstructor::new().requests(fragments).expect("requests");
    let mut seen = std::collections::HashSet::new();
    let mut circuits = Vec::new();
    for request in &requests {
        if seen.insert(request.key.clone()) {
            circuits.push(fragments.instantiate_key(&request.key).expect("instantiate"));
        }
    }
    circuits
}

fn bench_loopback_vs_in_process(c: &mut Criterion) {
    let circuits = workload();
    let local = ExactBackend::new();
    let server = QrccServer::bind("127.0.0.1:0", ExactBackend::new()).expect("bind").spawn();
    let remote = RemoteBackend::connect(server.addr()).expect("connect");
    eprintln!("transport workload: {} unique variant circuits", circuits.len());

    let mut group = c.benchmark_group("transport_loopback");
    group.sample_size(10);
    group.bench_function("in_process_batch", |b| {
        b.iter(|| {
            let results = local.run_batch(&circuits);
            assert!(results.iter().all(Result::is_ok));
            results.len()
        });
    });
    group.bench_function("loopback_batch", |b| {
        b.iter(|| {
            let results = remote.run_batch(&circuits);
            assert!(results.iter().all(Result::is_ok));
            results.len()
        });
    });
    group.finish();
    server.shutdown();
}

fn bench_frame_size_sweep(c: &mut Criterion) {
    let circuits = workload();
    let server = QrccServer::bind("127.0.0.1:0", ExactBackend::new()).expect("bind").spawn();
    let remote = RemoteBackend::connect(server.addr()).expect("connect");

    let mut group = c.benchmark_group("transport_frame_size");
    group.sample_size(10);
    for per_frame in [1usize, 8, 32] {
        group.bench_function(format!("circuits_per_frame_{per_frame}"), |b| {
            b.iter(|| {
                let mut total = 0usize;
                for chunk in circuits.chunks(per_frame) {
                    let results = remote.run_batch(chunk);
                    assert!(results.iter().all(Result::is_ok));
                    total += results.len();
                }
                total
            });
        });
    }
    group.finish();
    server.shutdown();
}

criterion_group!(benches, bench_loopback_vs_in_process, bench_frame_size_sweep);
criterion_main!(benches);
