//! Offline shim for the slice of `proptest` the QRCC workspace uses.
//!
//! Supports the `proptest!` macro (with `#![proptest_config(...)]`),
//! [`Strategy`] with `prop_map`, range and tuple strategies,
//! [`collection::vec`], `any::<bool>()`, `prop_assert!` / `prop_assert_eq!` /
//! `prop_assume!`. Cases are generated from a deterministic per-test seed so
//! failures reproduce; there is **no shrinking** — a failing case reports its
//! seed and case index instead.

#![warn(missing_docs)]

use std::fmt;
use std::ops::Range;

/// Deterministic generator driving value generation (SplitMix64 core).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator derived from a test identifier and case index, so each
    /// test case is reproducible run-to-run.
    pub fn deterministic(test_id: &str, case: u32) -> Self {
        // FNV-1a over the id, mixed with the case number.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_id.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform index in `0..bound` (`bound > 0`).
    pub fn next_index(&mut self, bound: usize) -> usize {
        ((self.next_u64() as u128 * bound as u128) >> 64) as usize
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` and should be skipped.
    Reject(String),
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// A rejection (assumption violated) with the given message.
    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError::Reject(message.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "failed: {m}"),
        }
    }
}

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Maximum consecutive `prop_assume!` rejections before giving up.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases, ..Default::default() }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64, max_global_rejects: 4096 }
    }
}

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.new_value(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + offset) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, i8, u16, i16, u32, i32, u64, i64, usize, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, G)
}

/// Strategy for "any value" of a type; see [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// The `any::<T>()` strategy constructor.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy,
{
    Any { _marker: std::marker::PhantomData }
}

impl Strategy for Any<bool> {
    type Value = bool;
    fn new_value(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! any_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

any_int_strategy!(u8, i8, u16, i16, u32, i32, u64, i64, usize, isize);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A half-open vector-length range; built from `usize` (exact length) or
    /// `Range<usize>`, mirroring proptest's `SizeRange` conversions.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        start: usize,
        end: usize,
    }

    impl From<usize> for SizeRange {
        fn from(len: usize) -> Self {
            SizeRange { start: len, end: len + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> Self {
            assert!(range.start < range.end, "empty vec-length range");
            SizeRange { start: range.start, end: range.end }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy; see
    /// [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A strategy generating vectors whose length is drawn from `size` and
    /// whose elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.end - self.size.start;
            let len = self.size.start + rng.next_index(span.max(1));
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Asserts a condition inside a property, failing the case (not panicking
/// directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Skips the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Declares property tests, mirroring `proptest::proptest!`.
///
/// Supported form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0..10usize, v in collection::vec(0..4u8, 1..5)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($config:expr) $( $(#[$meta:meta])* fn $name:ident( $($pat:pat in $strategy:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let test_id = concat!(module_path!(), "::", stringify!($name));
                let strategies = ($($strategy,)+);
                let mut rejects: u32 = 0;
                let mut case: u32 = 0;
                let mut executed: u32 = 0;
                while executed < config.cases {
                    let mut rng = $crate::TestRng::deterministic(test_id, case);
                    case += 1;
                    let ($($pat,)+) = $crate::Strategy::new_value(&strategies, &mut rng);
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        ::std::result::Result::Ok(()) => executed += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {
                            rejects += 1;
                            if rejects > config.max_global_rejects {
                                panic!(
                                    "proptest '{}' rejected too many cases ({} rejections)",
                                    stringify!($name), rejects
                                );
                            }
                        }
                        ::std::result::Result::Err($crate::TestCaseError::Fail(message)) => {
                            panic!(
                                "proptest '{}' failed at case {} (deterministic seed: id={:?}): {}",
                                stringify!($name), case - 1, test_id, message
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy,
        TestCaseError, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3..17usize, y in -2.5f64..2.5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.5..2.5).contains(&y), "y = {y}");
        }

        #[test]
        fn vec_strategy_respects_length(v in collection::vec(0..4u8, 2..9)) {
            prop_assert!((2..9).contains(&v.len()));
            for e in v {
                prop_assert!(e < 4);
            }
        }

        #[test]
        fn prop_map_applies(sum in (0..10u32, 0..10u32).prop_map(|(a, b)| a + b)) {
            prop_assert!(sum < 19);
        }

        #[test]
        fn assume_skips_cases(x in 0..100u32, flag in any::<bool>()) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
            let _ = flag;
        }
    }

    #[test]
    fn deterministic_rng_reproduces() {
        let mut a = TestRng::deterministic("id", 3);
        let mut b = TestRng::deterministic("id", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::deterministic("id", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_case_info() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(unused)]
            fn always_fails(x in 0..10u8) {
                prop_assert!(false, "x was {x}");
            }
        }
        always_fails();
    }
}
