//! Offline shim for the slice of `criterion` the QRCC workspace uses.
//!
//! Provides `criterion_group!` / `criterion_main!`, [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`] and [`black_box`].
//! Instead of criterion's full statistical machinery it warms up briefly,
//! runs `sample_size` timed samples of each benchmark and prints
//! min/median/mean wall-clock times — enough to compare code paths (the only
//! thing the workspace's benches do) without any external dependency.

#![warn(missing_docs)]

use std::fmt::Write as _;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque-value helper preventing the optimiser from deleting benchmark work.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, rendered `name/param`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { label: format!("{}/{}", name.into(), parameter) }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Per-iteration timing context handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `sample_size` executions of `routine`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warm-up: one untimed execution.
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut bencher);
        self.report(&id.to_string(), &mut bencher.samples);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut bencher, input);
        self.report(&id.to_string(), &mut bencher.samples);
        self
    }

    fn report(&mut self, id: &str, samples: &mut [Duration]) {
        let line = render_report(&format!("{}/{}", self.name, id), samples);
        println!("{line}");
        self.criterion.reports.push(line);
    }

    /// Ends the group (separator line, mirroring criterion's summary break).
    pub fn finish(&mut self) {}
}

fn render_report(label: &str, samples: &mut [Duration]) -> String {
    let mut line = String::new();
    if samples.is_empty() {
        let _ = write!(line, "{label:<60} (no samples)");
        return line;
    }
    samples.sort_unstable();
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    let _ = write!(
        line,
        "{label:<60} min {:>12?}  median {:>12?}  mean {:>12?}  ({} samples)",
        min,
        median,
        mean,
        samples.len()
    );
    line
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    reports: Vec<String>,
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n-- {name} --");
        BenchmarkGroup { criterion: self, name, sample_size: 10 }
    }

    /// Runs one stand-alone benchmark (no group).
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.to_string();
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Declares a benchmark group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim_smoke");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("scaled", 7), &7u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, tiny_bench);

    #[test]
    fn harness_runs_and_reports() {
        benches();
    }

    #[test]
    fn benchmark_ids_render_like_criterion() {
        assert_eq!(BenchmarkId::new("qft", 12).to_string(), "qft/12");
        assert_eq!(BenchmarkId::from_parameter("adder5_d7").to_string(), "adder5_d7");
    }
}
