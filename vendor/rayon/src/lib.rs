//! Offline shim for the slice of `rayon` the QRCC workspace uses.
//!
//! Provides `par_iter()` / `into_par_iter()` with `map(...).collect()` on
//! slices, vectors and ranges, executed with genuine data parallelism:
//! work is strided across `std::thread::scope` threads (one per available
//! core) and results are written back in input order. No work stealing, no
//! splitting heuristics — but for the coarse-grained circuit-simulation
//! batches this workspace runs, a static stride is within noise of the real
//! thing, and the API subset is call-compatible so the real `rayon` can be
//! swapped in when registry access is available.

#![warn(missing_docs)]

use std::num::NonZeroUsize;

/// Number of worker threads a parallel call fans out to.
fn num_threads() -> usize {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1))
}

/// Number of threads a parallel call would fan out to, mirroring
/// `rayon::current_num_threads`. Callers can skip building parallel job
/// lists entirely when this is 1 (single-core hosts, `RAYON_NUM_THREADS=1`).
pub fn current_num_threads() -> usize {
    num_threads()
}

/// Runs `f` over `items`, in parallel, preserving input order in the output.
fn parallel_map<I, R, F>(items: Vec<I>, f: F) -> Vec<R>
where
    I: Send,
    R: Send,
    F: Fn(I) -> R + Sync,
{
    let n = items.len();
    let threads = num_threads().min(n).max(1);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }

    // Hand each worker every `threads`-th item. Slots are written exactly
    // once, in input order, through per-item Option cells.
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    {
        let mut slot_refs: Vec<(usize, &mut Option<R>, I)> = Vec::with_capacity(n);
        for (idx, (slot, item)) in slots.iter_mut().zip(items).enumerate() {
            slot_refs.push((idx, slot, item));
        }
        let work = parking_free_queue(slot_refs, threads);
        std::thread::scope(|scope| {
            for chunk in work {
                let f = &f;
                scope.spawn(move || {
                    for (_, slot, item) in chunk {
                        *slot = Some(f(item));
                    }
                });
            }
        });
    }
    slots.into_iter().map(|slot| slot.expect("worker filled every slot")).collect()
}

/// Strides `work` into `threads` disjoint chunks (round-robin, so uneven
/// per-item costs still balance).
fn parking_free_queue<T>(work: Vec<T>, threads: usize) -> Vec<Vec<T>> {
    let mut chunks: Vec<Vec<T>> = (0..threads).map(|_| Vec::new()).collect();
    for (i, item) in work.into_iter().enumerate() {
        chunks[i % threads].push(item);
    }
    chunks
}

/// A parallel iterator over owned items (eagerly materialised).
pub struct ParIter<I> {
    items: Vec<I>,
}

impl<I: Send> ParIter<I> {
    /// Maps each item through `f` (lazily; the parallel fan-out happens at
    /// [`ParMap::collect`] / [`ParMap::for_each`] time).
    pub fn map<R, F>(self, f: F) -> ParMap<I, F>
    where
        R: Send,
        F: Fn(I) -> R + Sync,
    {
        ParMap { items: self.items, f }
    }

    /// Runs `f` on every item in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(I) + Sync,
    {
        parallel_map(self.items, f);
    }

    /// Pairs every item with its index, mirroring
    /// `IndexedParallelIterator::enumerate`.
    pub fn enumerate(self) -> ParIter<(usize, I)> {
        ParIter { items: self.items.into_iter().enumerate().collect() }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the iterator is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// The result of [`ParIter::map`]: a mapped parallel iterator.
pub struct ParMap<I, F> {
    items: Vec<I>,
    f: F,
}

impl<I, R, F> ParMap<I, F>
where
    I: Send,
    R: Send,
    F: Fn(I) -> R + Sync,
{
    /// Executes the map in parallel and collects the results in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        parallel_map(self.items, self.f).into_iter().collect()
    }
}

/// Types convertible into a parallel iterator over owned items.
pub trait IntoParallelIterator {
    /// The item type.
    type Item: Send;
    /// Converts into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter { items: self.collect() }
    }
}

/// Types whose references can be iterated in parallel (`par_iter`).
pub trait IntoParallelRefIterator<'a> {
    /// The borrowed item type.
    type Item: Send + 'a;
    /// A parallel iterator over borrowed items.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter { items: self.iter().collect() }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter { items: self.iter().collect() }
    }
}

/// Commonly used items, mirroring `rayon::prelude`.
pub mod prelude {
    pub use super::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let squares: Vec<usize> = (0..1000usize).into_par_iter().map(|x| x * x).collect();
        assert_eq!(squares.len(), 1000);
        for (i, &sq) in squares.iter().enumerate() {
            assert_eq!(sq, i * i);
        }
    }

    #[test]
    fn par_iter_borrows() {
        let data: Vec<String> = (0..64).map(|i| format!("item{i}")).collect();
        let lens: Vec<usize> = data.par_iter().map(|s| s.len()).collect();
        assert_eq!(lens[0], 5);
        assert_eq!(lens[10], 6);
    }

    #[test]
    fn actually_uses_multiple_threads() {
        if std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1) < 2 {
            return; // single-core environment: nothing to assert
        }
        use std::collections::HashSet;
        use std::sync::Mutex;
        let ids: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        (0..256usize).into_par_iter().for_each(|_| {
            ids.lock().unwrap().insert(std::thread::current().id());
            std::thread::sleep(std::time::Duration::from_micros(200));
        });
        assert!(ids.lock().unwrap().len() > 1, "expected more than one worker thread");
    }

    #[test]
    fn collect_into_result_short_circuits_types() {
        let ok: Result<Vec<usize>, ()> =
            (0..10usize).into_par_iter().map(Ok).collect::<Result<Vec<_>, _>>();
        assert_eq!(ok.unwrap().len(), 10);
    }
}
