//! Offline drop-in subset of the `rand` crate API.
//!
//! The QRCC workspace builds in environments without registry access, so this
//! vendored shim provides the (small) slice of `rand` the sources use:
//! [`Rng::gen`], [`Rng::gen_range`], [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`] and [`seq::SliceRandom::shuffle`]. The generator core is
//! xoshiro256++ seeded through SplitMix64 — deterministic, fast, and of more
//! than sufficient statistical quality for seeded simulation workloads.

#![warn(missing_docs)]

use std::ops::Range;

/// Low-level entropy source: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value of a [`Standard`]-distributed type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniformly random value in `range` (half-open).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types that can be sampled uniformly from the full bit stream.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges a value can be drawn from.
pub trait SampleRange {
    /// The element type of the range.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Multiply-shift bounded sampling (Lemire); bias is < 2^-64.
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + hi) as $t
            }
        }
    )*};
}

int_sample_range!(u8, i8, u16, i16, u32, i32, u64, i64, usize, isize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full 256-bit state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random slice operations.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` when empty.
        fn choose<'a, R: RngCore>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<'a, R: RngCore>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Commonly used items, mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_floats_are_in_range_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let v = rng.gen_range(0..5usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all outcomes should appear: {seen:?}");
        for _ in 0..100 {
            let v = rng.gen_range(-2.5..2.5f64);
            assert!((-2.5..2.5).contains(&v));
        }
        let v = rng.gen_range(-9i8..10);
        assert!((-9..10).contains(&v));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<usize> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }
}
