//! Offline shim for the slice of `parking_lot` the QRCC workspace uses:
//! non-poisoning [`Mutex`] and [`RwLock`] with the `parking_lot` lock API,
//! backed by the standard library's synchronisation primitives.

#![warn(missing_docs)]

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock that (like `parking_lot::Mutex`) does not poison:
/// a panic while holding the lock simply releases it.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with the `parking_lot` (non-poisoning) API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock { inner: std::sync::RwLock::new(value) }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trips_values() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_allows_concurrent_reads() {
        let l = RwLock::new(1);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 2);
        drop((a, b));
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }

    #[test]
    fn lock_survives_a_panicking_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poisoning attempt");
        })
        .join();
        // parking_lot semantics: the lock is usable after a panic.
        assert_eq!(*m.lock(), 0);
    }
}
