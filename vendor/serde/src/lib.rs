//! Offline facade for the slice of `serde` the QRCC workspace uses.
//!
//! The workspace derives `Serialize` / `Deserialize` on its data types but
//! never serialises anything at runtime, so this shim only re-exports the
//! no-op derives (which accept `#[serde(...)]` helper attributes) plus empty
//! marker traits under the usual names. Swapping in the real `serde` is a
//! one-line `Cargo.toml` change when registry access is available.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (no methods in the shim).
pub trait SerializeTrait {}

/// Marker trait mirroring `serde::Deserialize` (no methods in the shim).
pub trait DeserializeTrait {}
