//! Offline no-op `Serialize` / `Deserialize` derive macros.
//!
//! The QRCC workspace annotates its data types with serde derives so that a
//! real serde can be dropped in when registry access is available, but no code
//! path actually serialises anything. These derives accept the `#[serde(...)]`
//! helper attribute and expand to nothing, keeping the annotations compiling
//! without any external dependency.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
