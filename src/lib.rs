//! # QRCC — integrated qubit reuse and circuit cutting
//!
//! This facade crate re-exports the public API of the QRCC reproduction, a
//! framework for evaluating large quantum circuits on small quantum devices
//! by combining **wire cutting**, **gate cutting**, and **qubit reuse**
//! (Pawar et al., ASPLOS 2024).
//!
//! The workspace is organised as four library crates:
//!
//! * [`circuit`] — quantum circuit IR, benchmark generators, observables.
//! * [`sim`] — state-vector simulation, shot sampling, noise, devices.
//! * [`ilp`] — self-contained 0-1 ILP modelling and solving substrate.
//! * [`core`] — the QRCC compiler pass: QR-aware DAG, cutting models,
//!   subcircuit generation, and classical reconstruction.
//!
//! # Quickstart
//!
//! ```rust
//! use qrcc::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A 6-qubit circuit that we want to evaluate using only a 3-qubit device.
//! let mut circuit = Circuit::new(6);
//! circuit.h(0);
//! for q in 0..5 {
//!     circuit.cx(q, q + 1);
//! }
//! let plan = CutPlanner::new(QrccConfig::new(3)).plan(&circuit)?;
//! assert!(plan.subcircuit_widths().iter().all(|&w| w <= 3));
//! # Ok(())
//! # }
//! ```

pub use qrcc_circuit as circuit;
pub use qrcc_core as core;
pub use qrcc_ilp as ilp;
pub use qrcc_sim as sim;

/// Commonly used items, intended for glob import in examples and tests.
pub mod prelude {
    pub use qrcc_circuit::{
        generators, graph::Graph, observable::PauliObservable, Circuit, Gate, Operation, QubitId,
    };
    pub use qrcc_core::{
        cutqc::CutQcPlanner,
        execute::{CachingBackend, ExactBackend, ExecutionBackend, ShotsBackend},
        fragment::FragmentSet,
        pipeline::QrccPipeline,
        planner::{CutPlan, CutPlanner},
        reconstruct::{ExpectationReconstructor, ProbabilityReconstructor},
        reuse::ReusePass,
        QrccConfig,
    };
    pub use qrcc_sim::{
        device::{Device, DeviceConfig},
        noise::NoiseModel,
        Counts, StateVector,
    };
}
