//! # QRCC — integrated qubit reuse and circuit cutting
//!
//! This facade crate re-exports the public API of the QRCC reproduction, a
//! framework for evaluating large quantum circuits on small quantum devices
//! by combining **wire cutting**, **gate cutting**, and **qubit reuse**
//! (Pawar et al., ASPLOS 2024).
//!
//! The workspace is organised as five library crates:
//!
//! * [`circuit`] — quantum circuit IR, benchmark generators, observables.
//! * [`sim`] — state-vector simulation, shot sampling, noise, devices.
//! * [`ilp`] — self-contained 0-1 ILP modelling and solving substrate.
//! * [`core`] — the QRCC compiler pass: QR-aware DAG, cutting models,
//!   subcircuit generation, and classical reconstruction.
//! * [`net`] — the remote execution transport: a framed TCP protocol,
//!   [`QrccServer`](net::QrccServer) workers wrapping any backend, and
//!   [`RemoteBackend`](net::RemoteBackend) clients that drop into the
//!   dispatch layer.
//!
//! # Quickstart
//!
//! Execution is batch-first: plan once, `execute` once (the pipeline
//! enumerates every subcircuit variant, deduplicates them by structural key
//! and runs one rayon-parallel batch), then reconstruct as many outputs as
//! needed from the same [`ExecutionResults`](core::execute::ExecutionResults).
//!
//! ```rust
//! use qrcc::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A 6-qubit circuit that we want to evaluate using only a 3-qubit device.
//! let mut circuit = Circuit::new(6);
//! circuit.h(0);
//! for q in 0..5 {
//!     circuit.cx(q, q + 1);
//! }
//! let config = QrccConfig::new(3).with_ilp_time_limit(std::time::Duration::ZERO);
//! let pipeline = QrccPipeline::plan(&circuit, config)?;
//! assert!(pipeline.plan_ref().subcircuit_widths().iter().all(|&w| w <= 3));
//!
//! // execute → consume: one deduplicated batch serves the reconstruction
//! let backend = ExactBackend::new();
//! let results = pipeline.execute(&backend)?;
//! let probabilities = pipeline.reconstruct_probabilities_from(&results)?;
//! assert!((probabilities[0] - 0.5).abs() < 1e-6);
//! # Ok(())
//! # }
//! ```

pub use qrcc_circuit as circuit;
pub use qrcc_core as core;
pub use qrcc_ilp as ilp;
pub use qrcc_net as net;
pub use qrcc_sim as sim;

/// Commonly used items, intended for glob import in examples and tests.
pub mod prelude {
    pub use qrcc_circuit::{
        generators,
        graph::Graph,
        observable::{PauliObservable, PauliString},
        Circuit, Gate, Operation, QubitId,
    };
    // the fault-injection doubles ship only behind the `testing` feature
    #[cfg(feature = "testing")]
    pub use qrcc_core::dispatch::{FailureMode, FlakyBackend, QueueBackend};
    pub use qrcc_core::{
        cache::{CacheLookup, CacheStats, ResultCache, ResultCachePolicy},
        cutqc::CutQcPlanner,
        dispatch::DispatchStats,
        execute::{
            execute_requests, BackendUsage, CachingBackend, ExactBackend, ExecutionBackend,
            ExecutionResults, ShotsBackend,
        },
        fragment::{FragmentSet, FragmentVariant, VariantKey, VariantRequest},
        pipeline::QrccPipeline,
        planner::{CutPlan, CutPlanner},
        reconstruct::{
            ExpectationAccumulator, ExpectationReconstructor, ProbabilityAccumulator,
            ProbabilityReconstructor, ReconstructionOptions, ReconstructionReport,
            ReconstructionStrategy,
        },
        reuse::ReusePass,
        schedule::{DeviceRegistry, ScheduleReport, Scheduler, ShotAllocator},
        AnalysisContext, AnalysisReport, Analyzer, Diagnostic, LintLevel, Location, MonitorPolicy,
        QrccConfig, SchedulePolicy, Severity, ShotAllocation, SloEvaluation, SloSpec, SloStatus,
    };
    pub use qrcc_net::{
        lint_capabilities, FleetMonitor, FleetView, HealthReport, HealthState, QrccServer,
        RemoteBackend, ServerHandle, ServerStats,
    };
    pub use qrcc_sim::{
        compile::{CompileStats, FramedProgram, KernelCache},
        device::{Device, DeviceConfig},
        noise::NoiseModel,
        Counts, StateVector,
    };
}
